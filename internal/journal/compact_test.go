package journal

import (
	"io"
	"testing"

	"secureangle/internal/defense"
	"secureangle/internal/wifi"
)

var (
	benignMAC   = wifi.Addr{0x02, 0x00, 0x00, 0x00, 0x00, 0x01}
	attackerMAC = wifi.Addr{0x02, 0x00, 0x00, 0x00, 0x00, 0x02}
)

// buildCompactable writes a journal whose sealed segments mix benign
// reports with one attacker's incident (alert + directive), snapshots
// so those segments become compaction candidates, and returns the
// journal still open.
func buildCompactable(t *testing.T, dir string) *Journal {
	t.Helper()
	j := mustOpen(t, dir, Options{SegmentBytes: 1 << 10, MaxSegments: 64, Fsync: FsyncNever})
	report := func(mac wifi.Addr, seq uint64) {
		if _, err := j.Append(Record{Type: RecReport, Data: EncodeReport(ReportEvent{
			AP: "ap1", MAC: mac, Seq: seq, BearingDeg: 42,
		})}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		report(benignMAC, uint64(i))
	}
	if _, err := j.Append(Record{Type: RecAlert, Data: EncodeAlert(defense.SpoofVerdict{
		MAC: attackerMAC, AP: "ap1", Flagged: true, Distance: 9, Threshold: 3,
	})}); err != nil {
		t.Fatal(err)
	}
	report(attackerMAC, 1)
	if _, err := j.Append(Record{Type: RecDirective, Data: EncodeDirective(defense.Directive{
		MAC: attackerMAC, Action: defense.ActionQuarantine,
		From: defense.StateMonitor, To: defense.StateQuarantine,
	})}); err != nil {
		t.Fatal(err)
	}
	for i := 40; i < 80; i++ {
		report(benignMAC, uint64(i))
	}
	// Snapshot to cover everything so far, then rotate past it so the
	// covered segments are sealed candidates.
	if _, err := j.SaveSnapshot(func(w io.Writer) error {
		_, err := w.Write([]byte("snap"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	for i := 80; i < 120; i++ {
		report(benignMAC, uint64(i))
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	return j
}

func TestCompactDropsBenignKeepsIncidents(t *testing.T) {
	dir := t.TempDir()
	j := buildCompactable(t, dir)
	defer j.Close()

	lastBefore := j.LSN()
	st, err := j.Compact(CompactPolicy{Logf: t.Logf})
	if err != nil {
		t.Fatalf("compact: %v", err)
	}
	if st.SegmentsRewritten == 0 || st.RecordsDropped == 0 {
		t.Fatalf("compaction was a no-op: %+v", st)
	}
	if st.BytesReclaimed <= 0 {
		t.Fatalf("no bytes reclaimed: %+v", st)
	}

	// The compacted history must still scan cleanly end to end, keep
	// every incident-relevant record, and bridge elisions with skips.
	var alerts, directives, attackerReports, benignReports, skips int
	err = ReadRecords(dir, 0, func(rec Record) error {
		switch rec.Type {
		case RecAlert:
			alerts++
		case RecDirective:
			directives++
		case RecSkip:
			skips++
		case RecReport:
			ev, err := DecodeReport(rec.Data)
			if err != nil {
				t.Fatalf("report decode: %v", err)
			}
			if ev.MAC == attackerMAC {
				attackerReports++
			} else {
				benignReports++
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("read compacted journal: %v", err)
	}
	if alerts != 1 || directives != 1 {
		t.Fatalf("incident records lost: alerts=%d directives=%d", alerts, directives)
	}
	if attackerReports != 1 {
		t.Fatalf("attacker reports: got %d, want 1 (in-window reports are kept)", attackerReports)
	}
	if skips == 0 {
		t.Fatal("no skip records bridging the elided runs")
	}
	// The benign reports in the covered, out-of-window segments are
	// gone; the uncovered tail (80..119) plus any in-window stragglers
	// survive.
	if benignReports >= 120 {
		t.Fatalf("benign reports not compacted: %d survive", benignReports)
	}

	// Appends continue seamlessly after compaction.
	lsn, err := j.Append(Record{Type: RecReport, Data: EncodeReport(ReportEvent{AP: "ap1", MAC: benignMAC, Seq: 999})})
	if err != nil {
		t.Fatal(err)
	}
	if lsn != lastBefore+1 {
		t.Fatalf("post-compaction LSN %d, want %d", lsn, lastBefore+1)
	}
}

func TestCompactedJournalStreamsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	j := buildCompactable(t, dir)
	if _, err := j.Compact(CompactPolicy{}); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}

	// A replication cursor walks the compacted history without stalling
	// and surfaces the skips, ending at the journal's tip.
	c := NewCursor(dir, 0)
	defer c.Close()
	tip := uint64(0)
	for {
		recs, err := c.Next(1 << 20)
		if err != nil {
			t.Fatalf("cursor over compacted journal: %v", err)
		}
		if len(recs) == 0 {
			break
		}
		for _, rec := range recs {
			tip = rec.LSN
			if rec.Type == RecSkip {
				sk, err := DecodeSkip(rec.Data)
				if err != nil {
					t.Fatalf("skip decode: %v", err)
				}
				tip = sk.End
			}
		}
	}
	if tip != j.LSN() {
		t.Fatalf("cursor reached LSN %d, want tip %d", tip, j.LSN())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopening over the compacted directory recovers to the same tip —
	// the recovery scan handles skip records too.
	j2 := mustOpen(t, dir, Options{SegmentBytes: 1 << 10, MaxSegments: 64, Fsync: FsyncNever})
	defer j2.Close()
	lsn, err := j2.Append(Record{Type: RecReport, Data: EncodeReport(ReportEvent{AP: "ap1", MAC: benignMAC, Seq: 1000})})
	if err != nil {
		t.Fatal(err)
	}
	if lsn != tip+1 {
		t.Fatalf("post-reopen LSN %d, want %d", lsn, tip+1)
	}
}
