package journal

// Cursor is the replication reader: a resumable, tail-following scan
// of a journal directory that a leader uses to stream records to a
// warm standby. Unlike the recovery scan (scanSegment), a Cursor must
// coexist with the live writer: a short or CRC-failing frame at the
// end of the open segment is usually a record mid-write, not a tear,
// so the cursor parks at the frame boundary and retries from the same
// offset on the next call instead of declaring the segment finished.
//
// The cursor surfaces RecSkip records verbatim so a follower
// reproduces compaction gaps, and follows segment rotation by moving
// to the successor segment once the current one is exhausted and a
// segment starting at the next LSN exists.
//
// The read path is allocation-free in steady state: each cursor reads
// the segment in large pooled windows (one ReadAt per batch instead of
// two per record) and parses record frames in place, so the records a
// Next call returns alias the cursor's window buffer. A batch is valid
// only until the next Next or Close call — consume or copy it before
// pulling the next one (the replication sender marshals each batch
// into its wire frame immediately, so the aliasing never escapes).
// Window and record-slice scratch come from a package pool, arena
// style, and return to it on Close.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// cursorBuffers is the pooled scratch one cursor borrows for its
// lifetime: the read window and the reused output slice.
type cursorBuffers struct {
	buf  []byte
	recs []Record
}

var cursorPool = sync.Pool{New: func() any { return &cursorBuffers{} }}

// Cursor reads a journal directory's records in LSN order, resumably.
// Not safe for concurrent use; one goroutine per cursor.
type Cursor struct {
	dir  string
	next uint64 // next LSN to deliver

	f   *os.File // open segment (nil between segments)
	off int64    // absolute offset of the next unparsed frame

	bufs  *cursorBuffers // pooled scratch (nil until first Next, returned on Close)
	win   int            // valid bytes in bufs.buf (read from off-pos)
	pos   int            // parse position within the window
	atEOF bool           // the last fill drained the segment's readable bytes
}

// NewCursor positions a cursor so its first delivered record has
// LSN > after. Pass after=0 to stream from the start of retained
// history (a fresh follower bootstraps onto whatever the leader still
// has — its journal accepts any starting LSN).
func NewCursor(dir string, after uint64) *Cursor {
	return &Cursor{dir: dir, next: after + 1}
}

// NextLSN returns the LSN the next delivered record will have (or
// exceed, when retention starts history later).
func (c *Cursor) NextLSN() uint64 { return c.next }

// Close releases the cursor's open segment and returns its scratch
// buffers to the pool.
func (c *Cursor) Close() error {
	if c.bufs != nil {
		c.bufs.recs = c.bufs.recs[:0]
		cursorPool.Put(c.bufs)
		c.bufs = nil
	}
	if c.f != nil {
		err := c.f.Close()
		c.f = nil
		return err
	}
	return nil
}

// Next returns the next batch of records, up to maxBytes of payload
// (at least one record when any is available, regardless of size). An
// empty batch with nil error means the cursor is caught up with the
// durable tail — poll again later. Frames the writer has not finished
// flushing are invisible until complete.
//
// The returned records alias the cursor's internal window: they are
// valid only until the next call to Next or Close.
func (c *Cursor) Next(maxBytes int) ([]Record, error) {
	if c.bufs == nil {
		c.bufs = cursorPool.Get().(*cursorBuffers)
	}
	// Size the window for a full batch: payload budget plus framing
	// overhead headroom, so one ReadAt usually covers one batch.
	want := maxBytes + maxBytes/2 + (64 << 10)
	if cap(c.bufs.buf) < want {
		c.bufs.buf = make([]byte, want)
	}
	out := c.bufs.recs[:0]
	defer func() { c.bufs.recs = out }()
	total := 0
	for {
		if c.f == nil {
			ok, err := c.openNext()
			if err != nil {
				return out, err
			}
			if !ok {
				return out, nil // no segment holds c.next yet
			}
		}
		c.fill()
		consumed := false
		for {
			rec, st, err := c.parseRecord()
			if err != nil {
				return out, err
			}
			if st == parseSkipped {
				consumed = true
				continue
			}
			if st != parseOK {
				break
			}
			consumed = true
			out = append(out, rec)
			total += len(rec.Data)
			if total >= maxBytes {
				return out, nil
			}
		}
		// The window stalled short of the budget. Anything already
		// parsed goes back now — the next call resumes at c.off (and
		// crosses into the successor segment there if need be).
		if len(out) > 0 {
			return out, nil
		}
		if consumed {
			continue // skipped pre-subscribe records; refill at the new offset
		}
		if !c.atEOF {
			// A single frame larger than the window: grow and re-read.
			// Any other full-window stall (garbage where a frame header
			// should be) parks like a torn tail below.
			if need := c.stalledFrameSize(); need > cap(c.bufs.buf) {
				c.bufs.buf = make([]byte, need)
				continue
			}
		}
		// Exhausted the readable frames here. If a successor segment
		// already starts at c.next, this one is sealed — move on.
		// Otherwise we are at the live tail: hand back what we have.
		if c.successorExists() {
			c.f.Close()
			c.f = nil
			continue
		}
		return out, nil
	}
}

// fill reads a fresh window from the current offset. One syscall per
// window instead of two per record; a short read (or read error) marks
// the window as covering the segment's current readable tail.
func (c *Cursor) fill() {
	buf := c.bufs.buf[:cap(c.bufs.buf)]
	n, err := c.f.ReadAt(buf, c.off)
	c.win, c.pos = n, 0
	c.atEOF = err != nil || n < len(buf)
}

// stalledFrameSize returns the full byte size of the frame at the
// current parse position, when enough of its header is visible to know
// it (used to grow the window past an oversized record).
func (c *Cursor) stalledFrameSize() int {
	if c.win-c.pos < recHdrSize {
		return 0
	}
	frameLen := binary.BigEndian.Uint32(c.bufs.buf[c.pos : c.pos+4])
	if frameLen < frameFixed || frameLen > MaxRecordSize {
		return 0
	}
	return recHdrSize + int(frameLen)
}

type parseStatus uint8

const (
	parseOK      parseStatus = iota // a record was delivered
	parseStall                      // incomplete, invalid, or mid-write frame: stop here
	parseSkipped                    // a whole frame before the subscribe position was consumed
)

// parseRecord decodes one complete frame at the parse position. On
// parseStall the position is left unchanged so the same offset is
// retried later (mid-write frames become visible on a later fill).
func (c *Cursor) parseRecord() (Record, parseStatus, error) {
	b := c.bufs.buf[:c.win]
	if c.win-c.pos < recHdrSize {
		return Record{}, parseStall, nil // tail reached (or header mid-write)
	}
	frameLen := binary.BigEndian.Uint32(b[c.pos : c.pos+4])
	if frameLen < frameFixed || frameLen > MaxRecordSize {
		return Record{}, parseStall, nil // not a frame (zero-fill or mid-write)
	}
	if c.win-c.pos < recHdrSize+int(frameLen) {
		return Record{}, parseStall, nil // frame body not flushed (or past the window)
	}
	frame := b[c.pos+recHdrSize : c.pos+recHdrSize+int(frameLen)]
	if crc32.Checksum(frame, crcTable) != binary.BigEndian.Uint32(b[c.pos+4:c.pos+8]) {
		return Record{}, parseStall, nil // mid-write (or a tear recovery will judge)
	}
	rec := Record{
		Type: RecordType(frame[0]),
		LSN:  binary.BigEndian.Uint64(frame[1:9]),
		TS:   time.Unix(0, int64(binary.BigEndian.Uint64(frame[9:17]))),
		Data: frame[frameFixed:frameLen:frameLen],
	}
	c.pos += recHdrSize + int(frameLen)
	c.off += int64(recHdrSize) + int64(frameLen)
	if rec.LSN < c.next {
		return Record{}, parseSkipped, nil // before the subscribe position
	}
	if rec.LSN != c.next {
		return Record{}, parseStall, fmt.Errorf("journal: cursor sequence broke at LSN %d (want %d)", rec.LSN, c.next)
	}
	c.next = rec.LSN + 1
	if rec.Type == RecSkip {
		skip, err := DecodeSkip(rec.Data)
		if err != nil || skip.End < rec.LSN {
			return Record{}, parseStall, fmt.Errorf("journal: cursor hit malformed skip at LSN %d", rec.LSN)
		}
		c.next = skip.End + 1
	}
	return rec, parseOK, nil
}

// openNext opens the segment containing c.next, or the earliest later
// segment when retention already dropped it (the follower bootstraps
// from there). ok is false when no segment holds records >= c.next.
func (c *Cursor) openNext() (bool, error) {
	segs, err := listSegments(c.dir)
	if err != nil {
		return false, err
	}
	if len(segs) == 0 {
		return false, nil
	}
	pick := -1
	for i, seg := range segs {
		if seg.firstLSN <= c.next {
			pick = i
		}
	}
	if pick == -1 {
		// History starts past c.next: jump forward to its beginning.
		pick = 0
		c.next = segs[0].firstLSN
	}
	path := filepath.Join(c.dir, segs[pick].name)
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil // raced retention; retry next call
		}
		return false, err
	}
	var hdr [segHdrSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		f.Close()
		return false, nil // header not flushed yet; retry later
	}
	if string(hdr[:4]) != segMagic {
		f.Close()
		return false, fmt.Errorf("journal: bad segment magic in %s", segs[pick].name)
	}
	if v := binary.BigEndian.Uint16(hdr[4:6]); v != segVersion {
		f.Close()
		return false, fmt.Errorf("journal: unsupported segment version %d in %s", v, segs[pick].name)
	}
	c.f = f
	c.off = segHdrSize
	c.win, c.pos, c.atEOF = 0, 0, false
	return true, nil
}

// successorExists reports whether a segment starting exactly at c.next
// is on disk — the signal that the current segment is sealed.
func (c *Cursor) successorExists() bool {
	_, err := os.Stat(filepath.Join(c.dir, segmentName(c.next)))
	return err == nil
}
