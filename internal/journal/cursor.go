package journal

// Cursor is the replication reader: a resumable, tail-following scan
// of a journal directory that a leader uses to stream records to a
// warm standby. Unlike the recovery scan (scanSegment), a Cursor must
// coexist with the live writer: a short or CRC-failing frame at the
// end of the open segment is usually a record mid-write, not a tear,
// so the cursor parks at the frame boundary and retries from the same
// offset on the next call instead of declaring the segment finished.
//
// The cursor surfaces RecSkip records verbatim so a follower
// reproduces compaction gaps, and follows segment rotation by moving
// to the successor segment once the current one is exhausted and a
// segment starting at the next LSN exists.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"
)

// Cursor reads a journal directory's records in LSN order, resumably.
// Not safe for concurrent use; one goroutine per cursor.
type Cursor struct {
	dir  string
	next uint64 // next LSN to deliver

	f   *os.File // open segment (nil between segments)
	off int64    // read offset into f
}

// NewCursor positions a cursor so its first delivered record has
// LSN > after. Pass after=0 to stream from the start of retained
// history (a fresh follower bootstraps onto whatever the leader still
// has — its journal accepts any starting LSN).
func NewCursor(dir string, after uint64) *Cursor {
	return &Cursor{dir: dir, next: after + 1}
}

// NextLSN returns the LSN the next delivered record will have (or
// exceed, when retention starts history later).
func (c *Cursor) NextLSN() uint64 { return c.next }

// Close releases the cursor's open segment.
func (c *Cursor) Close() error {
	if c.f != nil {
		err := c.f.Close()
		c.f = nil
		return err
	}
	return nil
}

// Next returns the next batch of records, up to maxBytes of payload
// (at least one record when any is available, regardless of size). An
// empty batch with nil error means the cursor is caught up with the
// durable tail — poll again later. Frames the writer has not finished
// flushing are invisible until complete.
func (c *Cursor) Next(maxBytes int) ([]Record, error) {
	var out []Record
	total := 0
	for {
		if c.f == nil {
			ok, err := c.openNext()
			if err != nil {
				return out, err
			}
			if !ok {
				return out, nil // no segment holds c.next yet
			}
		}
		rec, ok, err := c.readRecord()
		if err != nil {
			return out, err
		}
		if !ok {
			// Exhausted the readable frames here. If a successor segment
			// already starts at c.next, this one is sealed — move on.
			// Otherwise we are at the live tail: hand back what we have.
			if c.successorExists() {
				c.f.Close()
				c.f = nil
				continue
			}
			return out, nil
		}
		out = append(out, rec)
		total += len(rec.Data)
		if total >= maxBytes {
			return out, nil
		}
	}
}

// openNext opens the segment containing c.next, or the earliest later
// segment when retention already dropped it (the follower bootstraps
// from there). ok is false when no segment holds records >= c.next.
func (c *Cursor) openNext() (bool, error) {
	segs, err := listSegments(c.dir)
	if err != nil {
		return false, err
	}
	if len(segs) == 0 {
		return false, nil
	}
	pick := -1
	for i, seg := range segs {
		if seg.firstLSN <= c.next {
			pick = i
		}
	}
	if pick == -1 {
		// History starts past c.next: jump forward to its beginning.
		pick = 0
		c.next = segs[0].firstLSN
	}
	path := filepath.Join(c.dir, segs[pick].name)
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil // raced retention; retry next call
		}
		return false, err
	}
	hdr := make([]byte, segHdrSize)
	if _, err := io.ReadFull(f, hdr); err != nil {
		f.Close()
		return false, nil // header not flushed yet; retry later
	}
	if string(hdr[:4]) != segMagic {
		f.Close()
		return false, fmt.Errorf("journal: bad segment magic in %s", segs[pick].name)
	}
	if v := binary.BigEndian.Uint16(hdr[4:6]); v != segVersion {
		f.Close()
		return false, fmt.Errorf("journal: unsupported segment version %d in %s", v, segs[pick].name)
	}
	c.f = f
	c.off = segHdrSize
	return true, nil
}

// readRecord reads one complete frame at c.off. ok is false when the
// remaining bytes do not (yet) form a complete valid frame — the
// offset is left unchanged so the same position is retried later.
func (c *Cursor) readRecord() (Record, bool, error) {
	for {
		var rh [recHdrSize]byte
		if _, err := c.f.ReadAt(rh[:], c.off); err != nil {
			return Record{}, false, nil // tail reached (or header mid-write)
		}
		frameLen := binary.BigEndian.Uint32(rh[0:4])
		if frameLen < frameFixed || frameLen > MaxRecordSize {
			return Record{}, false, nil // not a frame (zero-fill or mid-write)
		}
		frame := make([]byte, frameLen)
		if _, err := c.f.ReadAt(frame, c.off+recHdrSize); err != nil {
			return Record{}, false, nil // frame body not flushed yet
		}
		if crc32.Checksum(frame, crcTable) != binary.BigEndian.Uint32(rh[4:8]) {
			return Record{}, false, nil // mid-write (or a tear recovery will judge)
		}
		rec := Record{
			Type: RecordType(frame[0]),
			LSN:  binary.BigEndian.Uint64(frame[1:9]),
			TS:   time.Unix(0, int64(binary.BigEndian.Uint64(frame[9:17]))),
			Data: frame[frameFixed:],
		}
		c.off += int64(recHdrSize) + int64(frameLen)
		if rec.LSN < c.next {
			continue // before the subscribe position: skip within the segment
		}
		if rec.LSN != c.next {
			return Record{}, false, fmt.Errorf("journal: cursor sequence broke at LSN %d (want %d)", rec.LSN, c.next)
		}
		c.next = rec.LSN + 1
		if rec.Type == RecSkip {
			skip, err := DecodeSkip(rec.Data)
			if err != nil || skip.End < rec.LSN {
				return Record{}, false, fmt.Errorf("journal: cursor hit malformed skip at LSN %d", rec.LSN)
			}
			c.next = skip.End + 1
		}
		return rec, true, nil
	}
}

// successorExists reports whether a segment starting exactly at c.next
// is on disk — the signal that the current segment is sealed.
func (c *Cursor) successorExists() bool {
	_, err := os.Stat(filepath.Join(c.dir, segmentName(c.next)))
	return err == nil
}
