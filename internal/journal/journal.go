// Package journal is SecureAngle's flight recorder: a segmented,
// CRC32C-framed, append-only write-ahead log of the controller's
// decision-relevant event stream (frame reports at ingest, spoof
// alerts, fused fence decisions, defense directives, directive acks,
// operator releases) plus periodic snapshots of the fusion and defense
// engines' state.
//
// Two consumers sit on the same log:
//
//   - Crash recovery (netproto.Controller.WithJournal): a restarted
//     controller restores the latest snapshot and re-applies the WAL
//     tail, so live quarantines survive a crash instead of handing
//     every quarantined attacker a free re-entry window.
//   - Deterministic replay (Replay): the recorded event stream re-runs
//     offline against fresh engines driven by the *recorded* clock,
//     optionally under a different DefensePolicy — "what would the
//     fleet have done if QuarantineScore were lower?" — emitting the
//     counterfactual directive sequence.
//
// Layout of a journal directory:
//
//	wal-%020d.log    segments, named by their first LSN
//	snap-%020d.snap  state snapshots, named by the LSN they cover
//
// Each segment opens with a 14-byte header (magic "SAWL", a uint16
// format version, the segment's first LSN) followed by records framed
//
//	uint32 length   (of the frame that follows)
//	uint32 crc32c   (Castagnoli, of the frame)
//	frame:  uint8 type | uint64 lsn | int64 unix-nanos | payload
//
// A torn tail (the classic crash artefact: a record cut mid-write, or
// buffered appends that never reached the disk) fails the length or CRC
// check and cleanly ends the scan; reopening always starts a fresh
// segment after the last durable record, so the log never appends into
// a possibly-torn file.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Segment framing.
const (
	segMagic   = "SAWL" // SecureAngle Write-ahead Log
	segVersion = 1
	segHdrSize = 4 + 2 + 8
	recHdrSize = 4 + 4
	// frameFixed is the frame's fixed prefix: type + lsn + timestamp.
	frameFixed = 1 + 8 + 8
)

// MaxRecordSize bounds one record's frame (the netproto message bound:
// nothing the controller journals is larger).
const MaxRecordSize = 1 << 20

// Defaults for zero Options fields.
const (
	DefaultSegmentBytes = 4 << 20
	DefaultMaxSegments  = 64
	DefaultFsyncEvery   = 100 * time.Millisecond
)

// snapshotsKept is how many snapshot generations are retained (the
// latest serves recovery; one predecessor survives a torn latest).
const snapshotsKept = 2

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// FsyncPolicy selects the durability/latency tradeoff of Append.
type FsyncPolicy uint8

const (
	// FsyncInterval (the default) batches durability: appends land in a
	// buffered writer and a background flusher fsyncs every FsyncEvery.
	// A crash loses at most the last interval's events — and recovery
	// re-derives anything later APs re-report.
	FsyncInterval FsyncPolicy = iota
	// FsyncAlways flushes and fsyncs every append before returning:
	// nothing acknowledged is ever lost, at ~disk-latency per event.
	FsyncAlways
	// FsyncNever flushes only on segment rotation, snapshot, and Close;
	// the OS page cache decides when bytes reach the platter.
	FsyncNever
)

// String names the policy.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncInterval:
		return "interval"
	case FsyncAlways:
		return "always"
	case FsyncNever:
		return "never"
	default:
		return fmt.Sprintf("fsync(%d)", uint8(p))
	}
}

// Options tunes a Journal. Zero fields take the defaults.
type Options struct {
	// SegmentBytes is the rotation threshold: a segment past it is
	// sealed and a new one started (default 4 MiB).
	SegmentBytes int64
	// MaxSegments caps retained segments. Sealed segments wholly covered
	// by the latest snapshot are deleted oldest-first beyond the cap;
	// segments the latest snapshot does NOT cover are never deleted
	// (they are still needed for recovery), so retention only engages
	// once snapshots are being taken (default 64).
	MaxSegments int
	// Fsync selects the durability policy (default FsyncInterval).
	Fsync FsyncPolicy
	// FsyncEvery is the FsyncInterval flush period (default 100ms).
	FsyncEvery time.Duration
	// Logf, if set, receives diagnostic output.
	Logf func(format string, args ...any)
	// Clock overrides time.Now for record timestamps (tests).
	Clock func() time.Time
}

// WithDefaults returns opts with zero fields replaced by defaults.
func (o Options) WithDefaults() Options {
	if o.SegmentBytes == 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.MaxSegments == 0 {
		o.MaxSegments = DefaultMaxSegments
	}
	if o.FsyncEvery == 0 {
		o.FsyncEvery = DefaultFsyncEvery
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	return o
}

// Validate reports contradictions in already-defaulted Options.
func (o Options) Validate() error {
	if o.SegmentBytes < segHdrSize+recHdrSize+frameFixed {
		return fmt.Errorf("journal: SegmentBytes %d too small for one record", o.SegmentBytes)
	}
	if o.MaxSegments < 2 {
		return fmt.Errorf("journal: MaxSegments %d < 2", o.MaxSegments)
	}
	if o.FsyncEvery < 0 {
		return errors.New("journal: negative FsyncEvery")
	}
	return nil
}

// Record is one journal entry. Append assigns LSN (and TS when zero);
// scans return all fields as stored.
type Record struct {
	LSN  uint64
	Type RecordType
	TS   time.Time
	Data []byte
}

// ErrClosed reports an operation on a closed Journal.
var ErrClosed = errors.New("journal: closed")

// Journal is an open journal directory with a single writer. Safe for
// concurrent Append from many goroutines (the controller's connection
// handlers); exactly one Journal may own a directory at a time.
type Journal struct {
	dir  string
	opts Options

	mu      sync.Mutex
	f       *os.File // current segment (nil until the first append after open/rotate)
	segSize int64
	buf     []byte // userspace write buffer (flushed by policy)
	nextLSN uint64
	snapLSN uint64 // LSN covered by the latest snapshot (0 = none)
	durable uint64 // highest LSN known fsynced (group-commit watermark)
	dirty   bool   // bytes written since the last fsync
	closed  bool

	// syncMu is the group-commit barrier: committers that need an fsync
	// queue here while one of them performs it, then re-check the
	// durable watermark — concurrent FsyncAlways appenders share one
	// fdatasync instead of issuing one each. Lock order: syncMu before
	// mu, never the reverse.
	syncMu sync.Mutex

	// Operational counters, mutated under mu (the append path already
	// holds it) and surfaced by Stats for the ops endpoint.
	appends       uint64
	appendedBytes uint64
	fsyncs        uint64
	rotations     uint64
	snapTime      time.Time // when the latest snapshot completed (zero: none this run)

	done chan struct{}
	wg   sync.WaitGroup
}

// Open opens (creating as needed) the journal directory and positions
// the writer after the last durable record. A torn tail from a crash is
// tolerated: appending resumes in a fresh segment right after the last
// record that passes its CRC.
func Open(dir string, opts Options) (*Journal, error) {
	opts = opts.WithDefaults()
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	j := &Journal{dir: dir, opts: opts, nextLSN: 1, done: make(chan struct{})}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	for _, seg := range segs {
		last, err := scanSegment(filepath.Join(dir, seg.name), seg.firstLSN, 0, nil)
		if err != nil {
			return nil, fmt.Errorf("journal: segment %s: %w", seg.name, err)
		}
		if last >= j.nextLSN {
			j.nextLSN = last + 1
		}
	}
	if snaps, err := listSnapshots(dir); err == nil && len(snaps) > 0 {
		j.snapLSN = snaps[len(snaps)-1]
	}
	if opts.Fsync == FsyncInterval {
		j.wg.Add(1)
		go j.flushLoop()
	}
	return j, nil
}

// Dir returns the journal's directory.
func (j *Journal) Dir() string { return j.dir }

// LSN returns the last assigned log sequence number (0 before the
// first append of this process; recovery scans the directory instead).
func (j *Journal) LSN() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.nextLSN - 1
}

// SnapshotLSN returns the LSN the latest snapshot covers (0 = none).
func (j *Journal) SnapshotLSN() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snapLSN
}

func (j *Journal) logf(format string, args ...any) {
	if j.opts.Logf != nil {
		j.opts.Logf(format, args...)
	}
}

func (j *Journal) flushLoop() {
	defer j.wg.Done()
	t := time.NewTicker(j.opts.FsyncEvery)
	defer t.Stop()
	for {
		select {
		case <-j.done:
			return
		case <-t.C:
			if err := j.Sync(); err != nil && !errors.Is(err, ErrClosed) {
				j.logf("journal: background sync: %v", err)
			}
		}
	}
}

// frameLocked frames one record into the userspace buffer at the given
// LSN, updating size/counter state. The caller holds mu and has
// validated the record size and opened a segment.
func (j *Journal) frameLocked(typ RecordType, lsn uint64, ts time.Time, data []byte) {
	frameLen := frameFixed + len(data)
	start := len(j.buf)
	j.buf = binary.BigEndian.AppendUint32(j.buf, uint32(frameLen))
	j.buf = append(j.buf, 0, 0, 0, 0) // crc placeholder
	j.buf = append(j.buf, byte(typ))
	j.buf = binary.BigEndian.AppendUint64(j.buf, lsn)
	j.buf = binary.BigEndian.AppendUint64(j.buf, uint64(ts.UnixNano()))
	j.buf = append(j.buf, data...)
	frame := j.buf[start+recHdrSize:]
	binary.BigEndian.PutUint32(j.buf[start+4:start+8], crc32.Checksum(frame, crcTable))
	j.segSize += int64(recHdrSize + frameLen)
	j.appends++
	j.appendedBytes += uint64(recHdrSize + frameLen)
	j.dirty = true
}

// commitWait blocks until every record up to lsn is fsynced, sharing
// the fsync with concurrent committers: whoever reaches the barrier
// first syncs for everyone queued behind it, and the rest find the
// durable watermark already past their LSN when they get through.
func (j *Journal) commitWait(lsn uint64) error {
	j.mu.Lock()
	done := j.durable >= lsn
	j.mu.Unlock()
	if done {
		return nil
	}
	j.syncMu.Lock()
	defer j.syncMu.Unlock()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.durable >= lsn {
		return nil // coalesced into an earlier committer's fsync
	}
	if j.closed {
		return ErrClosed
	}
	return j.syncLocked()
}

// Append writes one record, assigning its LSN (returned) and stamping
// TS with the journal clock when zero. Durability follows the fsync
// policy; the record is always at least in the userspace buffer when
// Append returns. Under FsyncAlways, concurrent appenders coalesce on
// the group-commit barrier and may share a single fsync.
func (j *Journal) Append(rec Record) (uint64, error) {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return 0, ErrClosed
	}
	if len(rec.Data) > MaxRecordSize-frameFixed {
		j.mu.Unlock()
		return 0, fmt.Errorf("journal: record of %d bytes exceeds MaxRecordSize", len(rec.Data))
	}
	if rec.TS.IsZero() {
		rec.TS = j.opts.Clock()
	}
	if j.f == nil {
		if err := j.openSegmentLocked(); err != nil {
			j.mu.Unlock()
			return 0, err
		}
	}
	lsn := j.nextLSN
	j.frameLocked(rec.Type, lsn, rec.TS, rec.Data)
	j.nextLSN++
	if j.opts.Fsync != FsyncAlways && len(j.buf) >= 1<<16 {
		// Bound the userspace buffer between background syncs.
		if err := j.flushLocked(); err != nil {
			j.mu.Unlock()
			return 0, err
		}
	}
	if j.segSize >= j.opts.SegmentBytes {
		if err := j.rotateLocked(); err != nil {
			j.mu.Unlock()
			return 0, err
		}
	}
	j.mu.Unlock()
	if j.opts.Fsync == FsyncAlways {
		if err := j.commitWait(lsn); err != nil {
			return 0, err
		}
	}
	return lsn, nil
}

// AppendBatch writes a batch of records with one lock acquisition, one
// buffer reservation, one CRC pass per record, and a single flush and
// fsync decision for the whole batch. LSNs are assigned contiguously
// starting at the returned value; zero timestamps are stamped with one
// clock reading shared by the batch. The on-disk byte stream is
// identical to len(recs) serial Appends (same framing, same rotation
// points record by record), so readers cannot tell group commits from
// serial ones. Under FsyncAlways the whole batch rides one barrier
// fsync, amortizing durability across its records and across
// concurrent committers.
func (j *Journal) AppendBatch(recs []Record) (uint64, error) {
	if len(recs) == 0 {
		return 0, nil
	}
	need := 0
	for i := range recs {
		if len(recs[i].Data) > MaxRecordSize-frameFixed {
			return 0, fmt.Errorf("journal: record of %d bytes exceeds MaxRecordSize", len(recs[i].Data))
		}
		need += recHdrSize + frameFixed + len(recs[i].Data)
	}
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return 0, ErrClosed
	}
	if free := cap(j.buf) - len(j.buf); free < need {
		nb := make([]byte, len(j.buf), len(j.buf)+need)
		copy(nb, j.buf)
		j.buf = nb
	}
	var ts time.Time // one clock reading for the whole batch, read lazily
	first := j.nextLSN
	for i := range recs {
		rts := recs[i].TS
		if rts.IsZero() {
			if ts.IsZero() {
				ts = j.opts.Clock()
			}
			rts = ts
		}
		if j.f == nil {
			if err := j.openSegmentLocked(); err != nil {
				j.mu.Unlock()
				return 0, err
			}
		}
		j.frameLocked(recs[i].Type, j.nextLSN, rts, recs[i].Data)
		j.nextLSN++
		if j.segSize >= j.opts.SegmentBytes {
			if err := j.rotateLocked(); err != nil {
				j.mu.Unlock()
				return 0, err
			}
		}
	}
	last := j.nextLSN - 1
	if j.opts.Fsync != FsyncAlways && len(j.buf) >= 1<<16 {
		if err := j.flushLocked(); err != nil {
			j.mu.Unlock()
			return 0, err
		}
	}
	j.mu.Unlock()
	if j.opts.Fsync == FsyncAlways {
		if err := j.commitWait(last); err != nil {
			return 0, err
		}
	}
	return first, nil
}

// AppendRecord writes one record preserving its LSN and timestamp —
// the standby's replication sink, where the leader (not this journal)
// owns LSN assignment. The record must continue the local sequence:
// rec.LSN below the write position is ignored as an idempotent
// duplicate (replays after a reconnect), rec.LSN past it is an error
// (the leader streams contiguously, gaps included as RecSkip records).
// An empty journal accepts any starting LSN, bootstrapping a follower
// onto a leader whose history starts past LSN 1.
func (j *Journal) AppendRecord(rec Record) error {
	wait, err := j.appendRecordBuffered(rec)
	if err != nil || wait == 0 {
		return err
	}
	return j.commitWait(wait)
}

// appendRecordBuffered is AppendRecord up to (not including) the fsync:
// it returns the LSN the caller must commitWait on, or 0 when the
// policy demands no immediate fsync (or the record was a duplicate).
func (j *Journal) appendRecordBuffered(rec Record) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return 0, ErrClosed
	}
	if len(rec.Data) > MaxRecordSize-frameFixed {
		return 0, fmt.Errorf("journal: record of %d bytes exceeds MaxRecordSize", len(rec.Data))
	}
	if rec.LSN == 0 {
		return 0, fmt.Errorf("journal: AppendRecord needs an assigned LSN")
	}
	if j.virginLocked() {
		j.nextLSN = rec.LSN
	}
	if rec.LSN < j.nextLSN {
		return 0, nil // duplicate of an already-durable record
	}
	if rec.LSN > j.nextLSN {
		return 0, fmt.Errorf("journal: replication gap: record LSN %d, want %d", rec.LSN, j.nextLSN)
	}
	next := rec.LSN + 1
	if rec.Type == RecSkip {
		skip, err := DecodeSkip(rec.Data)
		if err != nil {
			return 0, fmt.Errorf("journal: bad skip record at LSN %d: %w", rec.LSN, err)
		}
		if skip.End < rec.LSN {
			return 0, fmt.Errorf("journal: skip record at LSN %d ends at %d", rec.LSN, skip.End)
		}
		next = skip.End + 1
	}
	if j.f == nil {
		if err := j.openSegmentLocked(); err != nil {
			return 0, err
		}
	}
	j.frameLocked(rec.Type, rec.LSN, rec.TS, rec.Data)
	j.nextLSN = next
	if j.opts.Fsync != FsyncAlways && len(j.buf) >= 1<<16 {
		if err := j.flushLocked(); err != nil {
			return 0, err
		}
	}
	if j.segSize >= j.opts.SegmentBytes {
		return 0, j.rotateLocked()
	}
	if j.opts.Fsync == FsyncAlways {
		return next - 1, nil
	}
	return 0, nil
}

// virginLocked reports whether the journal has no history at all — no
// appends this run, no open segment, and nothing durable from earlier
// runs (Open left nextLSN at 1 and no segments exist).
func (j *Journal) virginLocked() bool {
	if j.appends != 0 || j.f != nil || j.nextLSN != 1 || j.snapLSN != 0 {
		return false
	}
	segs, err := listSegments(j.dir)
	return err == nil && len(segs) == 0
}

// openSegmentLocked starts the segment whose first record will be
// nextLSN. An existing file of that name can only be the torn remnant
// of a crash before any of its records became durable (the open scan
// would otherwise have advanced nextLSN past it), so truncating is
// safe.
func (j *Journal) openSegmentLocked() error {
	name := segmentName(j.nextLSN)
	f, err := os.OpenFile(filepath.Join(j.dir, name), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	hdr := make([]byte, 0, segHdrSize)
	hdr = append(hdr, segMagic...)
	hdr = binary.BigEndian.AppendUint16(hdr, segVersion)
	hdr = binary.BigEndian.AppendUint64(hdr, j.nextLSN)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return err
	}
	j.f, j.segSize, j.dirty = f, segHdrSize, true
	return nil
}

// flushLocked drains the userspace buffer to the file.
func (j *Journal) flushLocked() error {
	if len(j.buf) == 0 {
		return nil
	}
	if j.f == nil {
		return errors.New("journal: buffered records with no open segment")
	}
	if _, err := j.f.Write(j.buf); err != nil {
		return err
	}
	j.buf = j.buf[:0]
	return nil
}

// syncLocked flushes and fsyncs the current segment, then advances the
// group-commit durable watermark past every framed record.
func (j *Journal) syncLocked() error {
	if err := j.flushLocked(); err != nil {
		return err
	}
	if j.f != nil && j.dirty {
		if err := j.f.Sync(); err != nil {
			return err
		}
		j.dirty = false
		j.fsyncs++
	}
	if j.nextLSN > 0 {
		j.durable = j.nextLSN - 1
	}
	return nil
}

// Stats is an operational snapshot of the journal: append/fsync
// throughput counters (this process lifetime), the durable write
// position, and on-disk segment/snapshot state.
type Stats struct {
	// Appends counts records appended; AppendedBytes their framed size.
	Appends, AppendedBytes uint64
	// Fsyncs counts actual fdatasync calls (policy-coalesced).
	Fsyncs uint64
	// Rotations counts sealed segments.
	Rotations uint64
	// LSN is the last assigned record number; SnapshotLSN the position
	// the newest snapshot covers.
	LSN, SnapshotLSN uint64
	// SnapshotAt is when the newest snapshot completed (zero if none
	// was taken in this process lifetime).
	SnapshotAt time.Time
	// Segments counts WAL segment files currently on disk.
	Segments int
}

// Stats returns the journal's operational snapshot. Counter fields are
// consistent with each other; the segment count is read from the
// directory and may lag a concurrent rotation by one.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	st := Stats{
		Appends:       j.appends,
		AppendedBytes: j.appendedBytes,
		Fsyncs:        j.fsyncs,
		Rotations:     j.rotations,
		LSN:           j.nextLSN - 1,
		SnapshotLSN:   j.snapLSN,
		SnapshotAt:    j.snapTime,
	}
	dir := j.dir
	j.mu.Unlock()
	if segs, err := listSegments(dir); err == nil {
		st.Segments = len(segs)
	}
	return st
}

// Sync makes every appended record durable now, regardless of policy.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	return j.syncLocked()
}

// rotateLocked seals the current segment and arranges for the next
// append to start a new one, then applies retention.
func (j *Journal) rotateLocked() error {
	if err := j.syncLocked(); err != nil {
		return err
	}
	if j.f != nil {
		if err := j.f.Close(); err != nil {
			return err
		}
		j.f = nil
		j.rotations++
	}
	j.trimLocked()
	return nil
}

// trimLocked deletes the oldest sealed segments beyond MaxSegments,
// but only those wholly covered by the latest snapshot — recovery must
// never lose records the snapshot does not embody.
func (j *Journal) trimLocked() {
	segs, err := listSegments(j.dir)
	if err != nil || len(segs) <= j.opts.MaxSegments {
		return
	}
	for i := 0; i+1 < len(segs) && len(segs)-i > j.opts.MaxSegments; i++ {
		lastLSN := segs[i+1].firstLSN - 1
		if lastLSN > j.snapLSN {
			break // not covered by a snapshot: still needed
		}
		if err := os.Remove(filepath.Join(j.dir, segs[i].name)); err != nil {
			j.logf("journal: retention: %v", err)
			break
		}
		j.logf("journal: retention dropped %s (through LSN %d)", segs[i].name, lastLSN)
	}
}

// Close flushes, fsyncs, and closes the journal. Further appends fail
// with ErrClosed.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	close(j.done)
	err := j.syncLocked()
	if j.f != nil {
		if cerr := j.f.Close(); err == nil {
			err = cerr
		}
		j.f = nil
	}
	j.mu.Unlock()
	j.wg.Wait()
	return err
}

// --- Snapshots ---

// SaveSnapshot persists a state snapshot via write (handed an
// io.Writer) covering every record appended so far: the WAL is synced
// first, the snapshot lands in a temp file, and only a successful write
// renames it into place — a crash mid-snapshot leaves the previous
// generation intact. Older snapshot generations beyond snapshotsKept
// are deleted, and segment retention re-runs against the new coverage.
// Returns the covered LSN.
//
// Consistency contract: the LSN is captured BEFORE write reads engine
// state, and callers apply an event to their engines BEFORE appending
// its record (the netproto.Controller ordering). An event racing the
// snapshot is then either reflected in the captured state with its
// record at LSN <= the label, or lands in the replayed tail — possibly
// BOTH, never neither. Recovery therefore re-applies at worst: fusion
// reports are absorbed by the seq dedup window, a defense alert
// double-counts its score once (bounded, decaying). The only evidence
// a snapshot can miss is derived state still in flight inside the
// engines at the capture instant (a fused decision's fence verdict
// landing between the capture and the state read); that is a few
// packets' worth and re-accumulates.
func (j *Journal) SaveSnapshot(write func(io.Writer) error) (uint64, error) {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return 0, ErrClosed
	}
	lsn := j.nextLSN - 1
	if err := j.syncLocked(); err != nil {
		j.mu.Unlock()
		return 0, err
	}
	j.mu.Unlock()

	tmp := filepath.Join(j.dir, snapshotName(lsn)+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, err
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, filepath.Join(j.dir, snapshotName(lsn))); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	syncDir(j.dir)

	j.mu.Lock()
	if lsn > j.snapLSN {
		j.snapLSN = lsn
	}
	j.snapTime = j.opts.Clock()
	j.trimSnapshotsLocked()
	j.trimLocked()
	j.mu.Unlock()
	return lsn, nil
}

// trimSnapshotsLocked deletes snapshot generations beyond snapshotsKept.
func (j *Journal) trimSnapshotsLocked() {
	snaps, err := listSnapshots(j.dir)
	if err != nil {
		return
	}
	for len(snaps) > snapshotsKept {
		os.Remove(filepath.Join(j.dir, snapshotName(snaps[0])))
		snaps = snaps[1:]
	}
}

// Snapshots returns the directory's snapshot generations (their
// covered LSNs), oldest first. Recovery walks them newest-first so a
// corrupt latest generation can fall back to its predecessor.
func Snapshots(dir string) ([]uint64, error) { return listSnapshots(dir) }

// OpenSnapshot opens the snapshot generation covering lsn.
func OpenSnapshot(dir string, lsn uint64) (io.ReadCloser, error) {
	return os.Open(filepath.Join(dir, snapshotName(lsn)))
}

// LatestSnapshot opens the newest snapshot in dir, returning its
// covered LSN and a reader. ok is false when the directory holds no
// snapshot.
func LatestSnapshot(dir string) (lsn uint64, r io.ReadCloser, ok bool, err error) {
	snaps, err := listSnapshots(dir)
	if err != nil || len(snaps) == 0 {
		return 0, nil, false, err
	}
	lsn = snaps[len(snaps)-1]
	f, err := os.Open(filepath.Join(dir, snapshotName(lsn)))
	if err != nil {
		return 0, nil, false, err
	}
	return lsn, f, true, nil
}

// --- Scanning ---

// ReadRecords scans the directory's segments in LSN order and calls fn
// for every record with LSN > after. A torn tail ends the scan cleanly;
// a gap in the LSN sequence (a retention-trimmed or corrupt segment in
// the middle of the requested range) returns an error, because silently
// skipping events would corrupt recovery. fn returning an error aborts
// the scan with that error.
func ReadRecords(dir string, after uint64, fn func(Record) error) error {
	segs, err := listSegments(dir)
	if err != nil {
		return err
	}
	expect := uint64(0) // next LSN we must see; 0 = first segment sets it
	for i, seg := range segs {
		if i > 0 && seg.firstLSN != expect {
			return fmt.Errorf("journal: gap before segment %s (have through LSN %d)", seg.name, expect-1)
		}
		if i == 0 {
			if seg.firstLSN > after+1 && after > 0 {
				return fmt.Errorf("journal: records after LSN %d requested but history starts at %d", after, seg.firstLSN)
			}
			expect = seg.firstLSN
		}
		last, err := scanSegment(filepath.Join(dir, seg.name), seg.firstLSN, after, fn)
		if err != nil {
			var abort scanAbort
			if errors.As(err, &abort) {
				return abort.err // fn's own error, unwrapped
			}
			return fmt.Errorf("journal: segment %s: %w", seg.name, err)
		}
		if last >= expect {
			expect = last + 1
		}
	}
	return nil
}

// errStopScan distinguishes fn-aborts from frame errors inside
// scanSegment.
type scanAbort struct{ err error }

func (a scanAbort) Error() string { return a.err.Error() }

// scanSegment reads one segment, calling fn (when non-nil) for records
// with LSN > after, and returns the last valid LSN seen (firstLSN-1
// when the segment holds none). Torn or corrupt frames end the scan of
// this segment without error — the durable prefix is what counts.
func scanSegment(path string, firstLSN, after uint64, fn func(Record) error) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	hdr := make([]byte, segHdrSize)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return firstLSN - 1, nil // torn before the header completed
	}
	if string(hdr[:4]) != segMagic {
		return 0, fmt.Errorf("bad segment magic %q", hdr[:4])
	}
	if v := binary.BigEndian.Uint16(hdr[4:6]); v != segVersion {
		return 0, fmt.Errorf("unsupported segment version %d", v)
	}
	if got := binary.BigEndian.Uint64(hdr[6:14]); got != firstLSN {
		return 0, fmt.Errorf("header LSN %d does not match name (%d)", got, firstLSN)
	}
	last := firstLSN - 1
	var rh [recHdrSize]byte
	for {
		if _, err := io.ReadFull(f, rh[:]); err != nil {
			return last, nil // end of segment (or torn header)
		}
		frameLen := binary.BigEndian.Uint32(rh[0:4])
		if frameLen < frameFixed || frameLen > MaxRecordSize {
			return last, nil // torn or zero-filled tail
		}
		frame := make([]byte, frameLen)
		if _, err := io.ReadFull(f, frame); err != nil {
			return last, nil // torn mid-frame
		}
		if crc32.Checksum(frame, crcTable) != binary.BigEndian.Uint32(rh[4:8]) {
			return last, nil // bit rot or torn write: stop at the tear
		}
		rec := Record{
			Type: RecordType(frame[0]),
			LSN:  binary.BigEndian.Uint64(frame[1:9]),
			TS:   time.Unix(0, int64(binary.BigEndian.Uint64(frame[9:17]))),
			Data: frame[frameFixed:],
		}
		if rec.LSN != last+1 {
			return last, nil // sequence broke: treat as a tear
		}
		last = rec.LSN
		if rec.Type == RecSkip {
			// Compaction gap: the record stands in for LSNs
			// [rec.LSN, End]; the expected sequence resumes after it.
			skip, err := DecodeSkip(rec.Data)
			if err != nil || skip.End < rec.LSN {
				return rec.LSN - 1, nil // malformed gap marker: treat as a tear
			}
			last = skip.End
		}
		if fn != nil && rec.LSN > after {
			if err := fn(rec); err != nil {
				return last, scanAbort{err}
			}
		}
	}
}

// --- Directory helpers ---

type segmentInfo struct {
	name     string
	firstLSN uint64
}

func segmentName(firstLSN uint64) string { return fmt.Sprintf("wal-%020d.log", firstLSN) }

func snapshotName(lsn uint64) string { return fmt.Sprintf("snap-%020d.snap", lsn) }

// listSegments returns the directory's segments sorted by first LSN.
func listSegments(dir string) ([]segmentInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segmentInfo
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), 10, 64)
		if err != nil {
			continue
		}
		segs = append(segs, segmentInfo{name: name, firstLSN: n})
	}
	sort.Slice(segs, func(i, k int) bool { return segs[i].firstLSN < segs[k].firstLSN })
	return segs, nil
}

// listSnapshots returns the directory's snapshot LSNs in ascending
// order.
func listSnapshots(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var snaps []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".snap") {
			continue
		}
		n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap"), 10, 64)
		if err != nil {
			continue
		}
		snaps = append(snaps, n)
	}
	sort.Slice(snaps, func(i, k int) bool { return snaps[i] < snaps[k] })
	return snaps, nil
}

// syncDir fsyncs a directory so a rename is durable (best effort — not
// every filesystem supports it).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
