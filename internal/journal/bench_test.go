package journal

import (
	"testing"
	"time"

	"secureangle/internal/geom"
	"secureangle/internal/wifi"
)

// BenchmarkJournalAppend measures the hot append path — one report
// record per op — under each fsync policy. The default (interval)
// policy is the headline number: the acceptance bar is amortised
// append <= 2 us/op with bounded allocs; fsync-always shows what
// per-event durability costs on this disk.
func BenchmarkJournalAppend(b *testing.B) {
	ev := ReportEvent{
		AP: "ap1", APPos: geom.Point{X: 1, Y: 2},
		MAC: wifi.Addr{0x66, 0, 0, 0, 0, 5}, Seq: 7, BearingDeg: 42.5,
	}
	for _, bc := range []struct {
		name string
		opts Options
	}{
		{"interval", Options{}},
		{"never", Options{Fsync: FsyncNever}},
		{"always", Options{Fsync: FsyncAlways}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			j, err := Open(b.TempDir(), bc.opts)
			if err != nil {
				b.Fatal(err)
			}
			defer j.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev.Seq = uint64(i)
				if _, err := j.Append(Record{Type: RecReport, Data: EncodeReport(ev)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkJournalAppendBatch measures the group-commit path: one
// 64-record AppendBatch per op (one lock, one buffer reservation, one
// flush/fsync decision), so ns/op divided by 64 compares against
// BenchmarkJournalAppend's per-record cost. Under `always`, the batch
// amortises its single barrier fsync over all 64 records.
func BenchmarkJournalAppendBatch(b *testing.B) {
	ev := ReportEvent{
		AP: "ap1", APPos: geom.Point{X: 1, Y: 2},
		MAC: wifi.Addr{0x66, 0, 0, 0, 0, 5}, Seq: 7, BearingDeg: 42.5,
	}
	const batch = 64
	for _, bc := range []struct {
		name string
		opts Options
	}{
		{"interval", Options{}},
		{"always", Options{Fsync: FsyncAlways}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			j, err := Open(b.TempDir(), bc.opts)
			if err != nil {
				b.Fatal(err)
			}
			defer j.Close()
			recs := make([]Record, batch)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				for k := range recs {
					ev.Seq = uint64(i*batch + k)
					recs[k] = Record{Type: RecReport, Data: EncodeReport(ev)}
				}
				b.StartTimer()
				if _, err := j.AppendBatch(recs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkJournalAppendParallel hammers Append from GOMAXPROCS
// goroutines (the controller's per-connection handlers) under the
// default policy.
func BenchmarkJournalAppendParallel(b *testing.B) {
	j, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	ev := ReportEvent{AP: "ap1", MAC: wifi.Addr{0x66, 0, 0, 0, 0, 5}, BearingDeg: 42.5}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := j.Append(Record{Type: RecReport, Data: EncodeReport(ev)}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkReplicationCursor measures streaming-side throughput: the
// records/sec a leader's per-partition stream goroutine can pull
// through a Cursor in frame-budget batches — the ceiling on how fast a
// warm standby can catch up from cold over a fat pipe.
func BenchmarkReplicationCursor(b *testing.B) {
	dir := b.TempDir()
	j, err := Open(dir, Options{Clock: func() time.Time { return time.Unix(1000, 0) }})
	if err != nil {
		b.Fatal(err)
	}
	ev := ReportEvent{AP: "ap1", MAC: wifi.Addr{0x66, 0, 0, 0, 0, 5}, BearingDeg: 42.5}
	const records = 10000
	for i := 0; i < records; i++ {
		ev.Seq = uint64(i)
		if _, err := j.Append(Record{Type: RecReport, Data: EncodeReport(ev)}); err != nil {
			b.Fatal(err)
		}
	}
	j.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewCursor(dir, 0)
		n := 0
		for {
			recs, err := c.Next(256 << 10) // the leader's frame budget
			if err != nil {
				b.Fatal(err)
			}
			if len(recs) == 0 {
				break
			}
			n += len(recs)
		}
		c.Close()
		if n != records {
			b.Fatalf("streamed %d/%d", n, records)
		}
	}
}

// BenchmarkJournalScan measures recovery-side throughput: records
// scanned per op over a pre-built multi-segment log.
func BenchmarkJournalScan(b *testing.B) {
	dir := b.TempDir()
	j, err := Open(dir, Options{Clock: func() time.Time { return time.Unix(1000, 0) }})
	if err != nil {
		b.Fatal(err)
	}
	ev := ReportEvent{AP: "ap1", MAC: wifi.Addr{0x66, 0, 0, 0, 0, 5}, BearingDeg: 42.5}
	const records = 10000
	for i := 0; i < records; i++ {
		ev.Seq = uint64(i)
		if _, err := j.Append(Record{Type: RecReport, Data: EncodeReport(ev)}); err != nil {
			b.Fatal(err)
		}
	}
	j.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := ReadRecords(dir, 0, func(Record) error { n++; return nil }); err != nil {
			b.Fatal(err)
		}
		if n != records {
			b.Fatalf("scanned %d/%d", n, records)
		}
	}
}
