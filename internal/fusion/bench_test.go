package fusion

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"secureangle/internal/geom"
	"secureangle/internal/locate"
	"secureangle/internal/wifi"
)

// seedFuser reimplements the seed controller's fusion state — one
// mutex, unbounded pending/decided maps — as the baseline
// BenchmarkFusionIngest compares the sharded engine against. (It skips
// the seed's per-key time.Timer machinery and diversity guard, which
// only makes it faster than the real seed path.)
type seedFuser struct {
	mu      sync.Mutex
	fence   *locate.Fence
	minAPs  int
	pending map[seedKey]map[string]apBearing
	decided map[seedKey]bool
}

type seedKey struct {
	mac wifi.Addr
	seq uint64
}

func newSeedFuser(fence *locate.Fence) *seedFuser {
	return &seedFuser{
		fence:   fence,
		minAPs:  2,
		pending: make(map[seedKey]map[string]apBearing),
		decided: make(map[seedKey]bool),
	}
}

func (f *seedFuser) ingest(b Bearing) {
	f.mu.Lock()
	defer f.mu.Unlock()
	key := seedKey{b.MAC, b.Seq}
	if f.decided[key] {
		return
	}
	m := f.pending[key]
	if m == nil {
		m = make(map[string]apBearing)
		f.pending[key] = m
	}
	m[b.AP] = apBearing{pos: b.APPos, deg: b.Deg}
	if len(m) < f.minAPs {
		return
	}
	obs := make([]locate.BearingObs, 0, len(m))
	for _, ab := range m {
		obs = append(obs, locate.BearingObs{AP: ab.pos, BearingDeg: ab.deg})
	}
	if _, _, err := f.fence.Decide(obs); err != nil {
		return
	}
	f.decided[key] = true
	delete(f.pending, key)
}

// benchTargets precomputes bearing pairs toward a spread of inside
// positions so the benchmark loop does no trigonometry of its own.
func benchTargets(n int) [][2]float64 {
	ap1 := geom.Point{X: 4, Y: 2}
	ap2 := geom.Point{X: 20, Y: 3}
	out := make([][2]float64, n)
	for i := range out {
		target := geom.Point{X: 2 + float64(i%20), Y: 2 + float64(i%12)}
		out[i] = [2]float64{geom.BearingDeg(ap1, target), geom.BearingDeg(ap2, target)}
	}
	return out
}

// BenchmarkFusionIngest compares fusion throughput — both bearings of
// a fresh transmission ingested and fused per iteration, spread over
// 1024 client MACs — between the seed's single-mutex design and the
// sharded engine. Run with -cpu 1,2,4 to see the sharded path scale
// with parallel AP connections while the single mutex serialises them:
//
//	go test -bench FusionIngest -cpu 1,2,4 ./internal/fusion
func BenchmarkFusionIngest(b *testing.B) {
	targets := benchTargets(4096)
	ap1 := geom.Point{X: 4, Y: 2}
	ap2 := geom.Point{X: 20, Y: 3}

	run := func(b *testing.B, ingest func(Bearing)) {
		b.ReportAllocs()
		var seq atomic.Uint64
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				s := seq.Add(1)
				m := mac(int(s % 1024))
				t := targets[s%uint64(len(targets))]
				ingest(Bearing{AP: "ap1", APPos: ap1, MAC: m, Seq: s, Deg: t[0]})
				ingest(Bearing{AP: "ap2", APPos: ap2, MAC: m, Seq: s, Deg: t[1]})
			}
		})
	}

	b.Run("single-mutex", func(b *testing.B) {
		f := newSeedFuser(testFence())
		run(b, f.ingest)
	})

	b.Run("sharded", func(b *testing.B) {
		e := MustNew(Config{
			Fence: testFence(),
			// Two APs report every transmission, so the all-APs
			// shortcut fuses immediately — the same work per pair as
			// the guard-free baseline.
			APCount:      func() int { return 2 },
			TickInterval: time.Hour,
		})
		defer e.Close()
		run(b, e.Ingest)
	})
}
