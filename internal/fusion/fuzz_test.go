package fusion

// Native fuzzing of the snapshot codec: crash recovery hands Restore
// whatever bytes survived on disk, so it must never panic and never
// over-allocate on a hostile header, and any snapshot it accepts must
// restore to an engine whose own Save is a stable canonical form.

import (
	"bytes"
	"testing"
	"time"

	"secureangle/internal/geom"
	"secureangle/internal/locate"
	"secureangle/internal/wifi"
)

func fuzzFusionEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := New(Config{
		Fence:        &locate.Fence{Boundary: geom.Rect(0, 0, 24, 16)},
		APCount:      func() int { return 2 },
		TickInterval: time.Hour, // keep the sweeper out of the fuzz loop
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func FuzzFusionSnapshotRestore(f *testing.F) {
	// Seed with real Save output: empty, and with fused per-client state.
	seedEngine, err := New(Config{
		Fence:        &locate.Fence{Boundary: geom.Rect(0, 0, 24, 16)},
		APCount:      func() int { return 2 },
		TickInterval: time.Hour,
	})
	if err != nil {
		f.Fatal(err)
	}
	defer seedEngine.Close()
	var empty bytes.Buffer
	if err := seedEngine.Save(&empty); err != nil {
		f.Fatal(err)
	}
	f.Add(empty.Bytes())
	ap1, ap2 := geom.Point{X: 0, Y: 0}, geom.Point{X: 24, Y: 0}
	target := geom.Point{X: 12, Y: 8}
	for seq := uint64(1); seq <= 3; seq++ {
		mac := wifi.Addr{2, 0, 0, 0, 0, byte(seq)}
		seedEngine.Ingest(Bearing{AP: "ap1", APPos: ap1, MAC: mac, Seq: seq, Deg: geom.BearingDeg(ap1, target)})
		seedEngine.Ingest(Bearing{AP: "ap2", APPos: ap2, MAC: mac, Seq: seq, Deg: geom.BearingDeg(ap2, target)})
	}
	var populated bytes.Buffer
	if err := seedEngine.Save(&populated); err != nil {
		f.Fatal(err)
	}
	f.Add(populated.Bytes())
	f.Add([]byte{})
	f.Add([]byte("SAFS"))
	f.Add([]byte("SAFS\x00\x01\xff\xff\xff\xff")) // huge claimed count

	f.Fuzz(func(t *testing.T, data []byte) {
		e := fuzzFusionEngine(t)
		if err := e.Restore(bytes.NewReader(data)); err != nil {
			return // rejected snapshots are the contract for bad bytes
		}
		// An accepted snapshot must leave the engine serviceable: its
		// own Save must succeed, and that canonical snapshot must
		// restore and re-save to identical bytes (Save sorts by MAC, so
		// equal state means equal bytes).
		var canon bytes.Buffer
		if err := e.Save(&canon); err != nil {
			t.Fatalf("restored engine cannot Save: %v", err)
		}
		e2 := fuzzFusionEngine(t)
		if err := e2.Restore(bytes.NewReader(canon.Bytes())); err != nil {
			t.Fatalf("canonical snapshot rejected: %v\n%x", err, canon.Bytes())
		}
		var canon2 bytes.Buffer
		if err := e2.Save(&canon2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(canon.Bytes(), canon2.Bytes()) {
			t.Fatalf("canonical snapshot is not a fixed point:\n%x\nvs\n%x", canon.Bytes(), canon2.Bytes())
		}
	})
}
