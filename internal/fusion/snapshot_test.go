package fusion

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"secureangle/internal/geom"
	"secureangle/internal/wifi"
)

// TestFusionSnapshotRoundTrip pins the Save/Restore codec: a restored
// engine reports the same tracks and keeps the anti-replay window, so
// re-ingesting an already-decided sequence is deduplicated, not
// re-fused.
func TestFusionSnapshotRoundTrip(t *testing.T) {
	clk := newFakeClock()
	capA := &capture{}
	a := newTestEngine(t, Config{APCount: func() int { return 2 }}, clk, capA)
	defer a.Close()

	macs := []wifi.Addr{
		{2, 0, 0, 0, 0, 1},
		{2, 0, 0, 0, 0, 2},
	}
	ap1, ap2 := geom.Point{X: 0, Y: 0}, geom.Point{X: 24, Y: 0}
	target := geom.Point{X: 12, Y: 8}
	for seq := uint64(1); seq <= 3; seq++ {
		for _, mac := range macs {
			a.Ingest(Bearing{AP: "ap1", APPos: ap1, MAC: mac, Seq: seq, Deg: geom.BearingDeg(ap1, target)})
			a.Ingest(Bearing{AP: "ap2", APPos: ap2, MAC: mac, Seq: seq, Deg: geom.BearingDeg(ap2, target)})
			clk.Advance(100 * time.Millisecond)
		}
	}
	if got := len(capA.decisions()); got != 6 {
		t.Fatalf("setup fused %d decisions", got)
	}

	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()

	capB := &capture{}
	b := newTestEngine(t, Config{APCount: func() int { return 2 }}, clk, capB)
	defer b.Close()
	if err := b.Restore(bytes.NewReader(blob)); err != nil {
		t.Fatal(err)
	}

	for _, mac := range macs {
		ta, oka := a.Track(mac)
		tb, okb := b.Track(mac)
		if !oka || !okb {
			t.Fatalf("track lost in restore: %v / %v", oka, okb)
		}
		if !reflect.DeepEqual(normTrack(ta), normTrack(tb)) {
			t.Errorf("track %v round trip:\n  %+v\nvs %+v", mac, ta, tb)
		}
	}
	if a.ClientCount() != b.ClientCount() {
		t.Errorf("client count %d -> %d", a.ClientCount(), b.ClientCount())
	}

	// The dedup window survived: an already-decided seq is dropped.
	before := b.Stats()
	b.Ingest(Bearing{AP: "ap1", APPos: ap1, MAC: macs[0], Seq: 2, Deg: geom.BearingDeg(ap1, target)})
	b.Ingest(Bearing{AP: "ap2", APPos: ap2, MAC: macs[0], Seq: 2, Deg: geom.BearingDeg(ap2, target)})
	after := b.Stats()
	if after.DupDropped != before.DupDropped+2 || after.Decisions != before.Decisions {
		t.Errorf("restored window did not dedup: %+v -> %+v", before, after)
	}

	// A fresh seq still fuses normally on the restored engine.
	b.Ingest(Bearing{AP: "ap1", APPos: ap1, MAC: macs[0], Seq: 4, Deg: geom.BearingDeg(ap1, target)})
	b.Ingest(Bearing{AP: "ap2", APPos: ap2, MAC: macs[0], Seq: 4, Deg: geom.BearingDeg(ap2, target)})
	if got := len(capB.decisions()); got != 1 {
		t.Errorf("restored engine fused %d decisions for the fresh seq, want 1", got)
	}
	ts, _ := b.Track(macs[0])
	if ts.LastSeq != 4 || ts.Fixes != 4 {
		t.Errorf("restored track did not advance: %+v", ts)
	}

	// Identical state encodes to identical bytes (MAC-ordered records).
	var buf2 bytes.Buffer
	if err := a.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, buf2.Bytes()) {
		t.Error("two saves of unchanged state differ")
	}
}

// normTrack zeroes the monotonic clock reading so DeepEqual compares
// wall instants.
func normTrack(ts TrackState) TrackState {
	ts.Updated = ts.Updated.Round(0)
	return ts
}

func TestFusionRestoreRejectsGarbage(t *testing.T) {
	e := newTestEngine(t, Config{}, nil, nil)
	defer e.Close()
	if err := e.Restore(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Fatal("garbage restored without error")
	}
	if err := e.Restore(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty restore succeeded")
	}
}
