package fusion

// The engine's snapshot codec: a versioned binary encoding of every
// client's durable state — the anti-replay seq window, the mobility
// filter estimate, and the latest fused fix — so a crashed controller
// can restore its fusion state instead of re-learning it (and handing
// every previously-decided sequence number a second decision). In-flight
// pending transmissions are deliberately NOT snapshotted: they are
// transient by design (TTL-bounded) and the journal's WAL tail replays
// the reports that created them.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"secureangle/internal/geom"
	"secureangle/internal/locate"
	"secureangle/internal/wifi"
)

// Snapshot codec framing.
const (
	snapMagic   = "SAFS" // SecureAngle Fusion State
	snapVersion = 1
)

// clientWireSize is one encoded client record: MAC + seq window
// (init byte, hi, mask) + track filter (pos, vel, init byte) + fix
// state (trackPos, lastFix nanos, fixes, lastSeq, decision byte).
const clientWireSize = 6 + 1 + 8 + 8 + 16 + 16 + 1 + 16 + 8 + 8 + 8 + 1

// Save writes a versioned binary snapshot of the engine's per-client
// state to w, in MAC order (deterministic bytes for identical state).
// It is safe to call concurrently with ingest; the snapshot is
// consistent per shard, not across shards (the Snapshot contract).
func (e *Engine) Save(w io.Writer) error {
	type rec struct {
		mac  wifi.Addr
		body [clientWireSize]byte
	}
	var recs []rec
	for _, s := range e.shards {
		s.mu.Lock()
		for mac, cl := range s.clients {
			r := rec{mac: mac}
			encodeClient(r.body[:0], cl)
			recs = append(recs, r)
		}
		s.mu.Unlock()
	}
	sort.Slice(recs, func(i, j int) bool {
		return bytes.Compare(recs[i].mac[:], recs[j].mac[:]) < 0
	})
	bw := bufio.NewWriter(w)
	bw.WriteString(snapMagic)
	var hdr [6]byte
	binary.BigEndian.PutUint16(hdr[0:2], snapVersion)
	binary.BigEndian.PutUint32(hdr[2:6], uint32(len(recs)))
	bw.Write(hdr[:])
	for i := range recs {
		bw.Write(recs[i].body[:])
	}
	return bw.Flush()
}

// encodeClient appends one client's wire form to b (cap >=
// clientWireSize). Shard lock held.
func encodeClient(b []byte, cl *client) []byte {
	b = append(b, cl.mac[:]...)
	b = appendBool(b, cl.seqInit)
	b = binary.BigEndian.AppendUint64(b, cl.seqHi)
	b = binary.BigEndian.AppendUint64(b, cl.seqMask)
	fpos, fvel, finited := cl.filter.State()
	b = appendPoint(b, fpos)
	b = appendPoint(b, fvel)
	b = appendBool(b, finited)
	b = appendPoint(b, cl.trackPos)
	// The zero time predates the unix-nano range; encode it as 0 so the
	// round trip preserves lastFix.IsZero for fixless clients.
	var fixNanos uint64
	if !cl.lastFix.IsZero() {
		fixNanos = uint64(cl.lastFix.UnixNano())
	}
	b = binary.BigEndian.AppendUint64(b, fixNanos)
	b = binary.BigEndian.AppendUint64(b, cl.fixes)
	b = binary.BigEndian.AppendUint64(b, cl.lastSeq)
	return append(b, byte(cl.lastDecision))
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func appendPoint(b []byte, p geom.Point) []byte {
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(p.X))
	return binary.BigEndian.AppendUint64(b, math.Float64bits(p.Y))
}

func readPoint(b []byte) geom.Point {
	return geom.Point{
		X: math.Float64frombits(binary.BigEndian.Uint64(b[0:8])),
		Y: math.Float64frombits(binary.BigEndian.Uint64(b[8:16])),
	}
}

// Restore loads a snapshot written by Save into the engine, replacing
// any state held for the snapshotted MACs (other clients are left
// alone). It is intended for a freshly-built engine before traffic
// arrives — the crash-recovery path — and respects the per-shard client
// cap (restoring more clients than MaxClients evicts, like ingest).
func (e *Engine) Restore(r io.Reader) error {
	hdr := make([]byte, 4+6)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return fmt.Errorf("fusion: snapshot header: %w", err)
	}
	if string(hdr[:4]) != snapMagic {
		return fmt.Errorf("fusion: bad snapshot magic %q", hdr[:4])
	}
	if v := binary.BigEndian.Uint16(hdr[4:6]); v != snapVersion {
		return fmt.Errorf("fusion: unsupported snapshot version %d", v)
	}
	count := binary.BigEndian.Uint32(hdr[6:10])
	br := bufio.NewReader(r)
	var body [clientWireSize]byte
	for i := uint32(0); i < count; i++ {
		if _, err := io.ReadFull(br, body[:]); err != nil {
			return fmt.Errorf("fusion: snapshot client %d: %w", i, err)
		}
		e.restoreClient(body[:])
	}
	return nil
}

// restoreClient decodes one client record and installs it in its shard.
func (e *Engine) restoreClient(b []byte) {
	var mac wifi.Addr
	copy(mac[:], b[:6])
	s := e.shardFor(mac)
	s.mu.Lock()
	defer s.mu.Unlock()
	cl := s.touch(e, mac)
	cl.seqInit = b[6] != 0
	cl.seqHi = binary.BigEndian.Uint64(b[7:15])
	cl.seqMask = binary.BigEndian.Uint64(b[15:23])
	fpos := readPoint(b[23:39])
	fvel := readPoint(b[39:55])
	cl.filter.SetState(fpos, fvel, b[55] != 0)
	cl.trackPos = readPoint(b[56:72])
	cl.lastFix = time.Time{}
	if nanos := binary.BigEndian.Uint64(b[72:80]); nanos != 0 {
		cl.lastFix = time.Unix(0, int64(nanos))
	}
	cl.fixes = binary.BigEndian.Uint64(b[80:88])
	cl.lastSeq = binary.BigEndian.Uint64(b[88:96])
	cl.lastDecision = locate.Decision(b[96])
}
