package fusion

import (
	"reflect"
	"testing"
	"time"

	"secureangle/internal/geom"
)

// batchWorkload builds a deterministic bearing sequence that exercises
// the batch path's tricky cases: many MACs spread across shards,
// repeated same-MAC fixes inside one batch (the track-state capture
// hazard), duplicate sequence numbers, and lone reports that never
// fuse.
func batchWorkload() []Bearing {
	var bs []Bearing
	targets := []geom.Point{{X: 9, Y: 6}, {X: 4, Y: 11}, {X: 17, Y: 8}, {X: 12, Y: 3}}
	for seq := uint64(1); seq <= 6; seq++ {
		for m := 0; m < 7; m++ {
			target := targets[(int(seq)+m)%len(targets)]
			pair := bearingsAt(mac(m*101), seq, target)
			bs = append(bs, pair...)
			if m%3 == 0 {
				bs = append(bs, pair[0]) // duplicate AP report: dropped
			}
		}
		// A lone report that never reaches MinAPs.
		bs = append(bs, bearingsAt(mac(9999), seq, targets[0])[:1]...)
	}
	return bs
}

// batchOutcome is one emitted decision with the track state observed
// alongside it.
type batchOutcome struct {
	d       Decision
	ts      TrackState
	tracked bool
}

// TestIngestBatchMatchesSerial pins the batch path's identity claim:
// for any batch sizing, IngestBatch produces exactly the decisions of
// the same bearings ingested serially, in the same order, and the
// track state it hands each emit matches what a serial consumer would
// read with Track right after that decision.
func TestIngestBatchMatchesSerial(t *testing.T) {
	bs := batchWorkload()

	serial := func() []batchOutcome {
		var out []batchOutcome
		var e *Engine
		cfg := Config{
			Fence:        testFence(),
			APCount:      func() int { return 2 },
			TickInterval: time.Hour,
			Clock:        func() time.Time { return time.Unix(1000, 0) },
			Emit: func(d Decision) {
				ts, ok := e.Track(d.MAC)
				out = append(out, batchOutcome{d: d, ts: ts, tracked: ok})
			},
		}
		e = MustNew(cfg)
		defer e.Close()
		for _, b := range bs {
			e.Ingest(b)
		}
		return out
	}()

	for _, size := range []int{1, 2, 3, 7, 64, len(bs)} {
		var out []batchOutcome
		e := MustNew(Config{
			Fence:        testFence(),
			APCount:      func() int { return 2 },
			TickInterval: time.Hour,
			Clock:        func() time.Time { return time.Unix(1000, 0) },
		})
		for start := 0; start < len(bs); start += size {
			end := min(start+size, len(bs))
			e.IngestBatch(bs[start:end], func(i int, d Decision, ts TrackState, tracked bool) {
				if i < 0 || i >= end-start {
					t.Errorf("batch size %d: emit index %d out of range", size, i)
				}
				out = append(out, batchOutcome{d: d, ts: ts, tracked: tracked})
			})
		}
		e.Close()
		if len(out) != len(serial) {
			t.Fatalf("batch size %d: %d decisions, serial produced %d", size, len(out), len(serial))
		}
		for i := range out {
			if !reflect.DeepEqual(out[i], serial[i]) {
				t.Errorf("batch size %d: outcome %d diverged:\n batch  %+v\n serial %+v", size, i, out[i], serial[i])
			}
		}
	}
}

// TestIngestBatchNilEmitUsesConfigured pins the fallback: with a nil
// emit the batch's decisions flow to cfg.Emit like serial ingest.
func TestIngestBatchNilEmitUsesConfigured(t *testing.T) {
	bs := batchWorkload()
	cap := &capture{}
	clk := newFakeClock()
	e := newTestEngine(t, Config{APCount: func() int { return 2 }}, clk, cap)
	e.IngestBatch(bs, nil)
	if len(cap.decisions()) == 0 {
		t.Fatal("nil emit: no decisions reached cfg.Emit")
	}
}
