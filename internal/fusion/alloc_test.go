package fusion

import (
	"math"
	"testing"
	"time"

	"secureangle/internal/geom"
)

// TestIngestAllocs pins the steady-state allocation count of the
// two-bearing ingest-and-fuse path (the BenchmarkFusionIngest workload,
// one MAC, repeated seq). The pendingTx pool recycles the per-
// transmission state, so the remaining allocations are the decision
// bookkeeping and track update — a regression means the pool stopped
// recycling or a map started reallocating per packet.
func TestIngestAllocs(t *testing.T) {
	e := MustNew(Config{
		Fence:        testFence(),
		APCount:      func() int { return 2 },
		TickInterval: time.Hour,
	})
	defer e.Close()

	ap1 := geom.Point{X: 4, Y: 2}
	ap2 := geom.Point{X: 20, Y: 3}
	target := geom.Point{X: 9, Y: 6}
	d1 := geom.BearingDeg(ap1, target)
	d2 := geom.BearingDeg(ap2, target)
	m := mac(1)

	seq := uint64(0)
	ingestPair := func() {
		seq++
		e.Ingest(Bearing{AP: "ap1", APPos: ap1, MAC: m, Seq: seq, Deg: d1})
		e.Ingest(Bearing{AP: "ap2", APPos: ap2, MAC: m, Seq: seq, Deg: d2})
	}
	for i := 0; i < 10; i++ {
		ingestPair()
	}
	// Best of a few attempts: a GC inside one window drains the
	// pendingTx pool and the refill reads as phantom allocs.
	best := math.Inf(1)
	for attempt := 0; attempt < 3 && best > 6; attempt++ {
		best = math.Min(best, testing.AllocsPerRun(200, ingestPair))
	}
	// PR 9 steady state: 1 alloc per fused pair (the Decision.APs
	// slice) now that Triangulate solves its 2x2 system in closed form
	// instead of through the general matrix path. Budget 6 leaves
	// headroom for map growth amortisation without letting the matrix
	// scratch (11 allocs) creep back.
	if best > 6 {
		t.Errorf("ingest+fuse pair: %.1f allocs, want <= 6", best)
	}
}
