// Package fusion is the controller's bearing-fusion engine: AP reports
// of the same transmission — one (MAC, sequence-number) key — are
// collected until enough geometrically-diverse bearings exist to
// triangulate a position and apply the virtual fence.
//
// The engine replaces the seed controller's three unbounded maps under
// one mutex with a bounded, sharded design built for the ROADMAP's
// "millions of users" target:
//
//   - State is sharded by MAC (FNV-1a, the same pattern as core's
//     signature registry), so concurrent AP connections ingesting
//     unrelated clients never contend on one lock.
//   - Decided (MAC, seq) dedup state is a per-client 64-entry sliding
//     window over sequence numbers — O(1) per client — instead of a map
//     that retains every key ever fused.
//   - Pending entries that never reach MinAPs bearings (a client only
//     one AP can hear) expire after PendingTTL instead of leaking; the
//     seed only armed a timer *after* the MinAPs threshold.
//   - A hard MaxClients cap evicts the least-recently-active client,
//     and MaxPendingPerClient bounds each client's in-flight
//     transmissions, so hostile MAC/seq churn cannot grow state.
//   - All deadlines (decision timeouts and TTLs) live in two per-shard
//     FIFO queues — both durations are constants, so creation order is
//     deadline order — swept periodically by a self-rescheduling timer
//     on the shared hierarchical timing wheel (internal/timingwheel)
//     instead of a time.Timer per key or a ticker goroutine per engine.
//     Entries unlink in O(1) when they decide, so the queues hold only
//     live pendings.
//
// Each client additionally carries an alpha-beta track.Filter fed by
// its fused positions, so the engine maintains live mobility traces
// (the paper's section 5 scenario) queryable via Track and Snapshot.
package fusion

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"secureangle/internal/geom"
	"secureangle/internal/locate"
	"secureangle/internal/timingwheel"
	"secureangle/internal/track"
	"secureangle/internal/wifi"
)

// Defaults for zero Config fields.
const (
	DefaultShards              = 16
	DefaultMinAPs              = 2
	DefaultDecisionTimeout     = time.Second
	DefaultPendingTTL          = 10 * time.Second
	DefaultMinDiversityDeg     = 15.0
	DefaultMaxClients          = 65536
	DefaultMaxPendingPerClient = 8
	DefaultTickInterval        = 50 * time.Millisecond
)

// seqWindow is the per-client sliding dedup window: a decision for
// (MAC, s) suppresses re-fusion of any seq in [s-63, s]. Sequence
// numbers older than the window are treated as duplicates — the price
// of O(1) dedup state per client.
const seqWindow = 64

// seqResetJump is the backward distance past which a sequence number
// is read as a counter reset rather than a stale replay: real 802.11
// sequence counters are 12-bit and wrap 4095 -> 0, which must not
// blacklist the client forever. A reset reinitialises the window.
const seqResetJump = 4 * seqWindow

// Config tunes an Engine. Zero fields take the defaults above; Validate
// rejects contradictions (Config-style, like core.Config).
type Config struct {
	// Shards is the lock-striping factor over MACs.
	Shards int
	// MinAPs is the number of distinct AP bearings required per decision.
	MinAPs int
	// DecisionTimeout bounds how long a geometrically-degenerate pending
	// decision waits for a more diverse bearing before fusing what it has.
	DecisionTimeout time.Duration
	// PendingTTL bounds how long a sub-MinAPs entry may wait for more
	// bearings before it is expired (the seed leaked these forever).
	PendingTTL time.Duration
	// MinDiversityDeg is the angular-diversity threshold of the
	// geometric-dilution guard: some pair of bearing lines must cross at
	// no less than this many degrees, or the decision is held for
	// DecisionTimeout. Zero means the default 15; negative disables the
	// guard entirely.
	MinDiversityDeg float64
	// MaxClients caps tracked clients across all shards; the
	// least-recently-active client is evicted beyond it.
	MaxClients int
	// MaxPendingPerClient caps one client's in-flight transmissions; the
	// oldest pending entry is evicted beyond it.
	MaxPendingPerClient int
	// TickInterval is the coarse deadline-sweep period. Expiries and
	// forced decisions land within one tick of their deadline.
	TickInterval time.Duration
	// TrackAlpha/TrackBeta are the mobility filter gains (zero takes the
	// indoor-walking defaults 0.5/0.3).
	TrackAlpha, TrackBeta float64

	// Fence decides fused positions. Required.
	Fence *locate.Fence
	// APCount, when set, reports the number of registered APs: a pending
	// decision every registered AP contributed to is fused even without
	// angular diversity (waiting cannot improve it). Nil means unknown —
	// the guard then always waits for diversity or the timeout.
	APCount func() int
	// Emit receives every fused decision, called outside all shard
	// locks. Nil discards decisions (tracking still updates).
	Emit func(Decision)
	// Logf, if set, receives diagnostic output.
	Logf func(format string, args ...any)

	// Clock overrides time.Now. Tests and the journal's deterministic
	// replay (internal/journal) drive it with synthetic or recorded
	// timestamps; nil means wall time.
	Clock func() time.Time
}

// WithDefaults returns cfg with zero fields replaced by defaults.
func (cfg Config) WithDefaults() Config {
	if cfg.Shards == 0 {
		cfg.Shards = DefaultShards
	}
	if cfg.MinAPs == 0 {
		cfg.MinAPs = DefaultMinAPs
	}
	if cfg.DecisionTimeout == 0 {
		cfg.DecisionTimeout = DefaultDecisionTimeout
	}
	if cfg.PendingTTL == 0 {
		cfg.PendingTTL = DefaultPendingTTL
	}
	if cfg.MinDiversityDeg == 0 {
		cfg.MinDiversityDeg = DefaultMinDiversityDeg
	}
	if cfg.MaxClients == 0 {
		cfg.MaxClients = DefaultMaxClients
	}
	if cfg.MaxPendingPerClient == 0 {
		cfg.MaxPendingPerClient = DefaultMaxPendingPerClient
	}
	if cfg.TickInterval == 0 {
		cfg.TickInterval = DefaultTickInterval
	}
	// track.NewFilter treats 0 gains as literal, so default them here.
	if cfg.TrackAlpha == 0 {
		cfg.TrackAlpha = 0.5
	}
	if cfg.TrackBeta == 0 {
		cfg.TrackBeta = 0.3
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return cfg
}

// Validate reports contradictions in an already-defaulted Config.
func (cfg Config) Validate() error {
	if cfg.Fence == nil {
		return errors.New("fusion: Config.Fence is required")
	}
	if cfg.Shards < 1 {
		return fmt.Errorf("fusion: Shards %d < 1", cfg.Shards)
	}
	if cfg.MinAPs < 2 {
		return fmt.Errorf("fusion: MinAPs %d < 2 (triangulation needs two bearings)", cfg.MinAPs)
	}
	if cfg.DecisionTimeout < 0 || cfg.PendingTTL < 0 || cfg.TickInterval < 0 {
		return errors.New("fusion: negative timeout")
	}
	if math.IsNaN(cfg.MinDiversityDeg) || cfg.MinDiversityDeg >= 90 {
		return fmt.Errorf("fusion: MinDiversityDeg %v unreachable (pairwise line angles top out at 90)", cfg.MinDiversityDeg)
	}
	if cfg.MaxClients < 1 {
		return fmt.Errorf("fusion: MaxClients %d < 1", cfg.MaxClients)
	}
	if cfg.MaxPendingPerClient < 1 {
		return fmt.Errorf("fusion: MaxPendingPerClient %d < 1", cfg.MaxPendingPerClient)
	}
	return nil
}

// Bearing is one AP's report of one transmission, with the AP's
// position resolved by the caller (the controller's registry) at report
// time.
type Bearing struct {
	AP    string
	APPos geom.Point
	MAC   wifi.Addr
	Seq   uint64
	Deg   float64
	// Trace is the packet's 64-bit trace ID, minted at the observing AP
	// and carried through the decision pipeline (0 = untraced).
	Trace uint64
}

// Decision is one fused fence outcome.
type Decision struct {
	MAC      wifi.Addr
	Seq      uint64
	Pos      geom.Point
	Decision locate.Decision
	// APs lists the access points whose bearings contributed.
	APs []string
	// Forced marks a decision fused at the DecisionTimeout (or TTL)
	// deadline without reaching angular diversity.
	Forced bool
	// Trace is the trace ID of the first traced bearing that joined the
	// fused transmission (0 when no contributing report carried one).
	Trace uint64
}

// TrackState is one client's live mobility-trace state: the alpha-beta
// filtered position and velocity after its latest fused fix.
type TrackState struct {
	MAC wifi.Addr
	// Pos is the filtered position (metres).
	Pos geom.Point
	// Vel is the filtered velocity estimate (m/s).
	Vel geom.Point
	// Fixes counts fused positions folded into the track.
	Fixes uint64
	// LastSeq is the sequence number of the latest fix.
	LastSeq uint64
	// Updated is when the latest fix arrived.
	Updated time.Time
	// Decision is the latest fence outcome.
	Decision locate.Decision
}

// Stats are the engine's monotonic counters.
type Stats struct {
	// Ingested counts bearings accepted into a shard.
	Ingested uint64
	// Decisions counts fused decisions emitted.
	Decisions uint64
	// DupDropped counts bearings for already-decided (MAC, seq) keys.
	DupDropped uint64
	// PendingExpired counts sub-MinAPs entries dropped at PendingTTL.
	PendingExpired uint64
	// PendingEvicted counts entries displaced by MaxPendingPerClient.
	PendingEvicted uint64
	// ClientsEvicted counts clients displaced by MaxClients.
	ClientsEvicted uint64
	// ForcedTimeouts counts decisions fused at a deadline without
	// angular diversity.
	ForcedTimeouts uint64
	// FuseErrors counts pending entries dropped because triangulation
	// failed (degenerate geometry at a forced deadline).
	FuseErrors uint64
}

// counters are per-shard statistics, mutated under the shard lock so
// the ingest hot path never touches a shared atomic cache line.
type counters struct {
	ingested, decisions, dupDropped    uint64
	pendingExpired, pendingEvicted     uint64
	clientsEvicted, forced, fuseErrors uint64
}

func (c *counters) add(o counters) {
	c.ingested += o.ingested
	c.decisions += o.decisions
	c.dupDropped += o.dupDropped
	c.pendingExpired += o.pendingExpired
	c.pendingEvicted += o.pendingEvicted
	c.clientsEvicted += o.clientsEvicted
	c.forced += o.forced
	c.fuseErrors += o.fuseErrors
}

// Engine is the sharded fusion engine. Safe for concurrent use.
type Engine struct {
	cfg    Config
	shards []*shard
	// pendingPool recycles pendingTx values (and their bearing maps)
	// across transmissions.
	pendingPool sync.Pool

	// batchPool recycles IngestBatch grouping scratch across batches.
	batchPool sync.Pool

	wheel  *timingwheel.Wheel
	tmr    timingwheel.Timer
	closed atomic.Bool
}

// New builds an Engine from cfg (zero fields defaulted, then
// validated).
func New(cfg Config) (*Engine, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:    cfg,
		shards: make([]*shard, cfg.Shards),
	}
	e.pendingPool.New = func() any {
		return &pendingTx{bearings: make(map[string]apBearing, cfg.MinAPs)}
	}
	// Per-shard client cap, rounded up so the global cap is respected
	// within a shard's worth of slack under adversarial skew.
	perShard := (cfg.MaxClients + cfg.Shards - 1) / cfg.Shards
	for i := range e.shards {
		e.shards[i] = &shard{
			clients:    make(map[wifi.Addr]*client),
			maxClients: perShard,
		}
	}
	// Periodic deadline sweep on the shared hierarchical timing wheel:
	// the timer reschedules itself from its own callback, so the engine
	// owns no goroutine and an idle engine costs one O(1) wheel entry.
	e.wheel = timingwheel.Acquire()
	e.tmr.Fn = func() {
		if e.closed.Load() {
			return
		}
		e.Sweep(e.cfg.Clock())
		if !e.closed.Load() {
			e.wheel.Schedule(&e.tmr, e.cfg.TickInterval)
		}
	}
	e.wheel.Schedule(&e.tmr, cfg.TickInterval)
	return e, nil
}

// MustNew is New for static configs known to be valid; it panics on a
// Validate failure (the core.NewAP contract).
func MustNew(cfg Config) *Engine {
	e, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// Close stops the deadline sweeper. In-flight Ingest calls complete;
// pending entries are abandoned without decisions.
func (e *Engine) Close() {
	if e.closed.Swap(true) {
		return
	}
	e.wheel.StopWait(&e.tmr)
	timingwheel.Release(e.wheel)
}

func (e *Engine) logf(format string, args ...any) {
	if e.cfg.Logf != nil {
		e.cfg.Logf(format, args...)
	}
}

// shardFor hashes a MAC onto its shard (FNV-1a, the signature-registry
// pattern).
func (e *Engine) shardFor(mac wifi.Addr) *shard {
	return e.shards[mac.Hash()%uint32(len(e.shards))]
}

// Ingest records one bearing and fuses a decision once MinAPs distinct
// APs have reported the same (MAC, seq) with acceptable geometry.
// After Close it drops the bearing: the deadline sweeper is gone, so
// accepting new pendings would leave them unexpirable.
func (e *Engine) Ingest(b Bearing) {
	if e.closed.Load() {
		return
	}
	now := e.cfg.Clock()
	s := e.shardFor(b.MAC)
	s.mu.Lock()
	d, emit := e.ingestLocked(s, b, now)
	s.mu.Unlock()
	if emit && e.cfg.Emit != nil {
		e.cfg.Emit(d)
	}
}

// batchScratch is the pooled grouping state one IngestBatch borrows:
// the shard assignment and shard-grouped order of the batch's
// bearings, and the decisions collected under the shard locks.
type batchScratch struct {
	shardOf []int32
	counts  []int32
	order   []int32
	decs    []indexedDecision
}

type indexedDecision struct {
	idx     int32
	tracked bool
	d       Decision
	ts      TrackState
}

// BatchEmit receives one batch decision: the input index of the
// bearing that completed it, the decision itself, and the client's
// track state as it stood when the decision fused (tracked is false
// when the client has no fix yet). The track state is captured under
// the shard lock at decision time, so a consumer that reacts to each
// decision sees the same state a serial Ingest+Track sequence would —
// not one already advanced by later same-MAC bearings in the batch.
type BatchEmit func(i int, d Decision, t TrackState, tracked bool)

// IngestBatch records a slice of bearings, grouping them by shard so
// each touched shard's lock is taken once per batch instead of once
// per bearing. Within a shard, bearings are applied in input order, so
// the decisions produced are exactly those of len(bs) serial Ingest
// calls sharing one clock reading; they are delivered outside all
// shard locks, in input order. emit, when non-nil, receives each
// decision with the input index of the bearing that completed it and
// overrides cfg.Emit for the batch; with a nil emit, decisions go to
// cfg.Emit as usual.
func (e *Engine) IngestBatch(bs []Bearing, emit BatchEmit) {
	if e.closed.Load() || len(bs) == 0 {
		return
	}
	now := e.cfg.Clock()
	nsh := int32(len(e.shards))
	if len(bs) < 2*int(nsh) {
		// Small batch (the common shape when a partition set splits one
		// wire batch several ways): the O(shards) grouping passes cost
		// more than they save until the batch is a couple of bearings
		// deep per shard. Walk in input order, coalescing the lock
		// across consecutive same-shard bearings. Shards partition the
		// MAC space, so within-shard input order — all that decision
		// identity needs — is preserved without the sort.
		var buf [8]indexedDecision
		decs := buf[:0]
		var cur *shard
		for i := range bs {
			s := e.shardFor(bs[i].MAC)
			if s != cur {
				if cur != nil {
					cur.mu.Unlock()
				}
				s.mu.Lock()
				cur = s
			}
			if d, ok := e.ingestLocked(s, bs[i], now); ok {
				id := indexedDecision{idx: int32(i), d: d}
				if cl := s.clients[d.MAC]; cl != nil && cl.fixes > 0 {
					id.ts, id.tracked = cl.state(), true
				}
				decs = append(decs, id)
			}
		}
		if cur != nil {
			cur.mu.Unlock()
		}
		for i := range decs {
			if emit != nil {
				emit(int(decs[i].idx), decs[i].d, decs[i].ts, decs[i].tracked)
			} else if e.cfg.Emit != nil {
				e.cfg.Emit(decs[i].d)
			}
		}
		return
	}
	sc, _ := e.batchPool.Get().(*batchScratch)
	if sc == nil {
		sc = &batchScratch{}
	}
	if cap(sc.shardOf) < len(bs) {
		sc.shardOf = make([]int32, len(bs))
		sc.order = make([]int32, len(bs))
	}
	if cap(sc.counts) < int(nsh)+1 {
		sc.counts = make([]int32, nsh+1)
	}
	shardOf, order := sc.shardOf[:len(bs)], sc.order[:len(bs)]
	counts := sc.counts[:nsh+1]
	for i := range counts {
		counts[i] = 0
	}
	for i := range bs {
		sh := int32(bs[i].MAC.Hash() % uint32(nsh))
		shardOf[i] = sh
		counts[sh+1]++
	}
	for sh := int32(0); sh < nsh; sh++ {
		counts[sh+1] += counts[sh]
	}
	// Stable counting-sort scatter: order holds the batch's bearing
	// indices grouped by shard, input order preserved within a shard.
	next := counts[:nsh]
	for i := range bs {
		sh := shardOf[i]
		order[next[sh]] = int32(i)
		next[sh]++
	}
	// shardOf is dead once the scatter is done; reuse it as an input
	// index -> decision slot map, which recovers input-order emission by
	// a linear walk instead of sorting the collected decisions (each
	// bearing completes at most one decision).
	slot := shardOf
	for i := range slot {
		slot[i] = -1
	}
	decs := sc.decs[:0]
	start := int32(0)
	for sh := int32(0); sh < nsh; sh++ {
		end := counts[sh] // next[sh] advanced to the run's end above
		if end == start {
			continue
		}
		s := e.shards[sh]
		s.mu.Lock()
		for _, idx := range order[start:end] {
			if d, ok := e.ingestLocked(s, bs[idx], now); ok {
				id := indexedDecision{idx: idx, d: d}
				// Capture the track state now, while later bearings in
				// this batch (possibly for the same MAC) have not yet
				// advanced the filter — serial-ingest equivalence.
				if cl := s.clients[d.MAC]; cl != nil && cl.fixes > 0 {
					id.ts, id.tracked = cl.state(), true
				}
				slot[idx] = int32(len(decs))
				decs = append(decs, id)
			}
		}
		s.mu.Unlock()
		start = end
	}
	if len(decs) > 0 {
		for i := range slot {
			k := slot[i]
			if k < 0 {
				continue
			}
			if emit != nil {
				emit(int(decs[k].idx), decs[k].d, decs[k].ts, decs[k].tracked)
			} else if e.cfg.Emit != nil {
				e.cfg.Emit(decs[k].d)
			}
		}
	}
	sc.decs = decs[:0]
	e.batchPool.Put(sc)
}

func (e *Engine) ingestLocked(s *shard, b Bearing, now time.Time) (Decision, bool) {
	s.ctr.ingested++
	cl := s.touch(e, b.MAC)
	if cl.seen(b.Seq) {
		s.ctr.dupDropped++
		return Decision{}, false
	}
	p := cl.pending[b.Seq]
	if p == nil {
		if len(cl.pending) >= e.cfg.MaxPendingPerClient {
			s.evictOldestPending(e, cl)
		}
		p = e.pendingPool.Get().(*pendingTx)
		p.cl, p.seq, p.created = cl, b.Seq, now
		p.trace = 0
		cl.pending[b.Seq] = p
		s.ttlList.pushTail(p, ttlLinks)
	}
	if p.trace == 0 {
		p.trace = b.Trace
	}
	p.bearings[b.AP] = apBearing{pos: b.APPos, deg: b.Deg}
	if len(p.bearings) < e.cfg.MinAPs {
		return Decision{}, false
	}

	// Geometric dilution guard: when every pair of bearing lines is
	// nearly parallel (a client close to the line between two APs), the
	// intersection is ill-conditioned and can land tens of metres away.
	// Hold the decision until a bearing with angular diversity arrives —
	// unless every registered AP has already reported, or a deadline
	// forces the best-available fix.
	if len(p.bearings) < e.apCount() && !e.diverse(p) {
		if !p.armed {
			p.armed = true
			p.armedAt = now
			s.decideList.pushTail(p, decideLinks)
		}
		return Decision{}, false
	}
	return e.finalizeLocked(s, p, now, false)
}

// apCount resolves the registered-AP shortcut bound; unknown means the
// shortcut never fires.
func (e *Engine) apCount() int {
	if e.cfg.APCount == nil {
		return math.MaxInt
	}
	if n := e.cfg.APCount(); n > 0 {
		return n
	}
	return math.MaxInt
}

// diverse checks angular diversity of a pending entry's bearings.
func (e *Engine) diverse(p *pendingTx) bool {
	if e.cfg.MinDiversityDeg < 0 {
		return true
	}
	for a1, b1 := range p.bearings {
		for a2, b2 := range p.bearings {
			if a1 >= a2 {
				continue
			}
			// Bearings compare modulo 180: a line and its reverse are
			// the same line.
			d := b1.deg - b2.deg
			for d < 0 {
				d += 180
			}
			for d >= 180 {
				d -= 180
			}
			if d > 90 {
				d = 180 - d
			}
			if d >= e.cfg.MinDiversityDeg {
				return true
			}
		}
	}
	return false
}

// finalizeLocked fuses a pending entry, records the seq in the dedup
// window, and advances the client's mobility track. Shard lock held;
// the returned decision is emitted by the caller after unlock.
func (e *Engine) finalizeLocked(s *shard, p *pendingTx, now time.Time, forced bool) (Decision, bool) {
	// Capture everything needed after dropPending now: the pool may hand
	// p to another shard the moment it is dropped.
	cl, seq, trace := p.cl, p.seq, p.trace
	obs := s.obsScratch[:0]
	// Fuse in AP-name order: map iteration order would otherwise leak
	// into the least-squares accumulation (and the APs list), making the
	// fused position vary in the last float bits between runs — replay
	// (internal/journal) requires byte-identical decisions.
	aps := make([]string, 0, len(p.bearings))
	for name := range p.bearings {
		aps = append(aps, name)
	}
	sort.Strings(aps)
	for _, name := range aps {
		b := p.bearings[name]
		obs = append(obs, locate.BearingObs{AP: b.pos, BearingDeg: b.deg})
	}
	s.obsScratch = obs[:0] // keep any growth for the next decision
	dec, pos, err := e.cfg.Fence.Decide(obs)
	if err != nil {
		s.ctr.fuseErrors++
		e.logf("fusion: fuse %v seq %d: %v", cl.mac, seq, err)
		// The dedup window is NOT marked on failure, so the seq can be
		// rescued: an ingest-path failure keeps the entry pending for a
		// later, more diverse bearing (the seed behaviour, but with the
		// TTL still bounding it); a deadline-path failure drops the
		// entry — its wait is up — without poisoning future reports.
		if forced {
			s.dropPending(e, p)
		}
		return Decision{}, false
	}
	s.dropPending(e, p)
	cl.mark(seq)
	s.ctr.decisions++
	if forced {
		s.ctr.forced++
	}
	dt := 0.0
	if cl.fixes > 0 {
		dt = now.Sub(cl.lastFix).Seconds()
	}
	cl.trackPos = cl.filter.Update(pos, dt)
	cl.lastFix = now
	cl.fixes++
	cl.lastSeq = seq
	cl.lastDecision = dec
	return Decision{MAC: cl.mac, Seq: seq, Pos: pos, Decision: dec, APs: aps, Forced: forced, Trace: trace}, true
}

// Sweep processes every deadline due at or before now: sub-MinAPs
// entries past their TTL are expired, and entries held for diversity
// past their decision timeout are force-fused. The internal ticker
// calls this every TickInterval; tests call it directly with a
// synthetic clock.
func (e *Engine) Sweep(now time.Time) {
	for _, s := range e.shards {
		s.mu.Lock()
		var out []Decision
		// Decision deadlines first (they are the shorter duration):
		// every armed entry already has >= MinAPs bearings.
		for p := s.decideList.head; p != nil; p = s.decideList.head {
			if now.Before(p.armedAt.Add(e.cfg.DecisionTimeout)) {
				break
			}
			if dec, ok := e.finalizeLocked(s, p, now, true); ok {
				out = append(out, dec)
			}
		}
		for p := s.ttlList.head; p != nil; p = s.ttlList.head {
			if now.Before(p.created.Add(e.cfg.PendingTTL)) {
				break
			}
			if len(p.bearings) >= e.cfg.MinAPs {
				// Viable but still held at TTL (the decision deadline
				// postdates it): fuse what we have rather than discard.
				if dec, ok := e.finalizeLocked(s, p, now, true); ok {
					out = append(out, dec)
				}
				continue
			}
			cl, seq, n := p.cl, p.seq, len(p.bearings)
			s.dropPending(e, p)
			s.ctr.pendingExpired++
			e.logf("fusion: expired %v seq %d with %d bearing(s) after %v", cl.mac, seq, n, e.cfg.PendingTTL)
		}
		s.mu.Unlock()
		if e.cfg.Emit != nil {
			for _, dec := range out {
				e.cfg.Emit(dec)
			}
		}
	}
}

// Stats snapshots the engine counters (aggregated across shards).
func (e *Engine) Stats() Stats {
	var c counters
	for _, s := range e.shards {
		s.mu.Lock()
		c.add(s.ctr)
		s.mu.Unlock()
	}
	return Stats{
		Ingested:       c.ingested,
		Decisions:      c.decisions,
		DupDropped:     c.dupDropped,
		PendingExpired: c.pendingExpired,
		PendingEvicted: c.pendingEvicted,
		ClientsEvicted: c.clientsEvicted,
		ForcedTimeouts: c.forced,
		FuseErrors:     c.fuseErrors,
	}
}

// ShardStats returns per-shard counter snapshots in shard order, plus
// each shard's live client and pending counts folded into the same
// struct positions the aggregate Stats uses. The ops surface exposes
// these as `shard="i"`-labelled series so a hot shard (one MAC range
// absorbing a spoof storm) is visible before it saturates.
func (e *Engine) ShardStats() []Stats {
	out := make([]Stats, len(e.shards))
	for i, s := range e.shards {
		s.mu.Lock()
		c := s.ctr
		s.mu.Unlock()
		out[i] = Stats{
			Ingested:       c.ingested,
			Decisions:      c.decisions,
			DupDropped:     c.dupDropped,
			PendingExpired: c.pendingExpired,
			PendingEvicted: c.pendingEvicted,
			ClientsEvicted: c.clientsEvicted,
			ForcedTimeouts: c.forced,
			FuseErrors:     c.fuseErrors,
		}
	}
	return out
}

// ClientCount reports live tracked clients across all shards — the
// bounded-memory invariant is ClientCount <= MaxClients + slack and
// PendingCount <= ClientCount * MaxPendingPerClient, regardless of how
// many packets were ever ingested.
func (e *Engine) ClientCount() int {
	n := 0
	for _, s := range e.shards {
		s.mu.Lock()
		n += len(s.clients)
		s.mu.Unlock()
	}
	return n
}

// PendingCount reports in-flight pending transmissions across shards.
func (e *Engine) PendingCount() int {
	n := 0
	for _, s := range e.shards {
		s.mu.Lock()
		for _, cl := range s.clients {
			n += len(cl.pending)
		}
		s.mu.Unlock()
	}
	return n
}

// Track returns the live mobility-trace state for one MAC.
func (e *Engine) Track(mac wifi.Addr) (TrackState, bool) {
	s := e.shardFor(mac)
	s.mu.Lock()
	defer s.mu.Unlock()
	cl := s.clients[mac]
	if cl == nil || cl.fixes == 0 {
		return TrackState{}, false
	}
	return cl.state(), true
}

// Snapshot returns the mobility-trace state of every client with at
// least one fused fix. Consistent per shard, not across shards (the
// registry-snapshot contract).
func (e *Engine) Snapshot() []TrackState {
	var out []TrackState
	for _, s := range e.shards {
		s.mu.Lock()
		for _, cl := range s.clients {
			if cl.fixes > 0 {
				out = append(out, cl.state())
			}
		}
		s.mu.Unlock()
	}
	return out
}

// --- shard internals ---

type apBearing struct {
	pos geom.Point
	deg float64
}

// pendingTx is one in-flight transmission. It is linked into its
// shard's TTL queue from creation and into the decision-deadline queue
// once armed; both links unlink in O(1) when the entry resolves.
type pendingTx struct {
	bearings map[string]apBearing
	created  time.Time
	armedAt  time.Time
	armed    bool

	cl  *client
	seq uint64
	// trace is the first traced bearing's ID; deterministic because
	// ingest order is (replay order is the recorded order).
	trace uint64

	ttlPrev, ttlNext       *pendingTx
	decidePrev, decideNext *pendingTx
}

// pendingLinks selects one of pendingTx's two intrusive link pairs.
type pendingLinks int

const (
	ttlLinks pendingLinks = iota
	decideLinks
)

func (p *pendingTx) links(which pendingLinks) (prev, next **pendingTx) {
	if which == ttlLinks {
		return &p.ttlPrev, &p.ttlNext
	}
	return &p.decidePrev, &p.decideNext
}

// pendingList is an intrusive FIFO of pendingTx. Deadlines are
// constant offsets from push time, so head order is deadline order.
type pendingList struct {
	head, tail *pendingTx
	which      pendingLinks
}

func (l *pendingList) pushTail(p *pendingTx, which pendingLinks) {
	l.which = which
	prev, next := p.links(which)
	*prev, *next = l.tail, nil
	if l.tail != nil {
		_, tn := l.tail.links(which)
		*tn = p
	} else {
		l.head = p
	}
	l.tail = p
}

func (l *pendingList) unlink(p *pendingTx) {
	prev, next := p.links(l.which)
	if *prev != nil {
		_, pn := (*prev).links(l.which)
		*pn = *next
	} else {
		l.head = *next
	}
	if *next != nil {
		np, _ := (*next).links(l.which)
		*np = *prev
	} else {
		l.tail = *prev
	}
	*prev, *next = nil, nil
}

type shard struct {
	mu         sync.Mutex
	clients    map[wifi.Addr]*client
	ttlList    pendingList
	decideList pendingList
	maxClients int
	ctr        counters
	// obsScratch is reused across decisions (Fence.Decide does not
	// retain the slice).
	obsScratch []locate.BearingObs
	// Intrusive LRU list over clients; head = most recently active.
	lruHead, lruTail *client
}

// dropPending unlinks p from its client and both deadline queues and
// recycles it. Shard lock held.
func (s *shard) dropPending(e *Engine, p *pendingTx) {
	delete(p.cl.pending, p.seq)
	s.ttlList.unlink(p)
	if p.armed {
		s.decideList.unlink(p)
	}
	clear(p.bearings)
	p.armed = false
	p.cl = nil
	e.pendingPool.Put(p)
}

type client struct {
	mac     wifi.Addr
	pending map[uint64]*pendingTx

	// Anti-replay dedup window: seqHi is the highest decided seq,
	// seqMask bit i marks seqHi-i decided.
	seqInit bool
	seqHi   uint64
	seqMask uint64

	filter       *track.Filter
	trackPos     geom.Point
	lastFix      time.Time
	fixes        uint64
	lastSeq      uint64
	lastDecision locate.Decision

	lruPrev, lruNext *client
}

func (cl *client) state() TrackState {
	return TrackState{
		MAC:      cl.mac,
		Pos:      cl.trackPos,
		Vel:      cl.filter.Velocity(),
		Fixes:    cl.fixes,
		LastSeq:  cl.lastSeq,
		Updated:  cl.lastFix,
		Decision: cl.lastDecision,
	}
}

// seen reports whether seq was already decided: inside the window the
// bitmap answers; moderately older than the window counts as a stale
// replay (decided); a jump of seqResetJump or more back is a counter
// reset (802.11 wrap) and fuses normally.
func (cl *client) seen(seq uint64) bool {
	if !cl.seqInit || seq > cl.seqHi {
		return false
	}
	d := cl.seqHi - seq
	if d >= seqResetJump {
		return false // counter reset, not a replay
	}
	if d >= seqWindow {
		return true
	}
	return cl.seqMask&(1<<d) != 0
}

// mark records seq as decided in the sliding window (reinitialising it
// on a counter reset, mirroring seen).
func (cl *client) mark(seq uint64) {
	if !cl.seqInit {
		cl.seqInit, cl.seqHi, cl.seqMask = true, seq, 1
		return
	}
	if seq > cl.seqHi {
		if shift := seq - cl.seqHi; shift >= seqWindow {
			cl.seqMask = 0
		} else {
			cl.seqMask <<= shift
		}
		cl.seqHi = seq
		cl.seqMask |= 1
		return
	}
	d := cl.seqHi - seq
	if d >= seqResetJump {
		cl.seqHi, cl.seqMask = seq, 1
		return
	}
	if d < seqWindow {
		cl.seqMask |= 1 << d
	}
}

// touch returns the client for mac, creating it (and evicting the LRU
// client past the shard cap) as needed, and moves it to the LRU head.
// Shard lock held.
func (s *shard) touch(e *Engine, mac wifi.Addr) *client {
	cl := s.clients[mac]
	if cl == nil {
		if len(s.clients) >= s.maxClients {
			s.evictLRU(e)
		}
		cl = &client{
			mac:     mac,
			pending: make(map[uint64]*pendingTx, 1),
			filter:  track.NewFilter(e.cfg.TrackAlpha, e.cfg.TrackBeta),
		}
		s.clients[mac] = cl
	}
	s.lruMoveToFront(cl)
	return cl
}

func (s *shard) lruMoveToFront(cl *client) {
	if s.lruHead == cl {
		return
	}
	s.lruUnlink(cl)
	cl.lruNext = s.lruHead
	if s.lruHead != nil {
		s.lruHead.lruPrev = cl
	}
	s.lruHead = cl
	if s.lruTail == nil {
		s.lruTail = cl
	}
}

func (s *shard) lruUnlink(cl *client) {
	if cl.lruPrev != nil {
		cl.lruPrev.lruNext = cl.lruNext
	}
	if cl.lruNext != nil {
		cl.lruNext.lruPrev = cl.lruPrev
	}
	if s.lruHead == cl {
		s.lruHead = cl.lruNext
	}
	if s.lruTail == cl {
		s.lruTail = cl.lruPrev
	}
	cl.lruPrev, cl.lruNext = nil, nil
}

// evictLRU drops the least-recently-active client and its in-flight
// pendings. Shard lock held.
func (s *shard) evictLRU(e *Engine) {
	victim := s.lruTail
	if victim == nil {
		return
	}
	s.lruUnlink(victim)
	delete(s.clients, victim.mac)
	for _, p := range victim.pending {
		s.dropPending(e, p)
	}
	s.ctr.clientsEvicted++
	e.logf("fusion: evicted client %v (%d fixes) at MaxClients", victim.mac, victim.fixes)
}

// evictOldestPending drops cl's oldest in-flight transmission to make
// room for a new one. Shard lock held.
func (s *shard) evictOldestPending(e *Engine, cl *client) {
	var oldest *pendingTx
	for _, p := range cl.pending {
		if oldest == nil || p.created.Before(oldest.created) {
			oldest = p
		}
	}
	if oldest == nil {
		return
	}
	seq := oldest.seq
	s.dropPending(e, oldest)
	s.ctr.pendingEvicted++
	e.logf("fusion: evicted pending %v seq %d at MaxPendingPerClient", cl.mac, seq)
}
