package fusion

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"secureangle/internal/geom"
	"secureangle/internal/locate"
	"secureangle/internal/wifi"
)

// fakeClock is an injectable test clock (the engine's ticker still
// runs on wall time, but every deadline comparison uses this).
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

type capture struct {
	mu   sync.Mutex
	decs []Decision
	logs []string
}

func (c *capture) emit(d Decision) {
	c.mu.Lock()
	c.decs = append(c.decs, d)
	c.mu.Unlock()
}

func (c *capture) logf(format string, args ...any) {
	c.mu.Lock()
	c.logs = append(c.logs, fmt.Sprintf(format, args...))
	c.mu.Unlock()
}

func (c *capture) decisions() []Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Decision(nil), c.decs...)
}

func (c *capture) logged(substr string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, l := range c.logs {
		if strings.Contains(l, substr) {
			return true
		}
	}
	return false
}

func testFence() *locate.Fence {
	return &locate.Fence{Boundary: geom.Rect(0, 0, 24, 16)}
}

func newTestEngine(t *testing.T, cfg Config, clk *fakeClock, cap *capture) *Engine {
	t.Helper()
	if cfg.Fence == nil {
		cfg.Fence = testFence()
	}
	if clk != nil {
		cfg.Clock = clk.Now
	}
	if cap != nil {
		cfg.Emit = cap.emit
		cfg.Logf = cap.logf
	}
	// Keep the wall-clock ticker out of the way: tests drive Sweep with
	// the fake clock directly.
	if cfg.TickInterval == 0 {
		cfg.TickInterval = time.Hour
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

func mac(i int) wifi.Addr {
	return wifi.Addr{0x02, 0, 0, byte(i >> 16), byte(i >> 8), byte(i)}
}

// bearingsAt returns two diverse bearings observing target from fixed
// AP corners.
func bearingsAt(macAddr wifi.Addr, seq uint64, target geom.Point) []Bearing {
	ap1 := geom.Point{X: 4, Y: 2}
	ap2 := geom.Point{X: 20, Y: 3}
	return []Bearing{
		{AP: "ap1", APPos: ap1, MAC: macAddr, Seq: seq, Deg: geom.BearingDeg(ap1, target)},
		{AP: "ap2", APPos: ap2, MAC: macAddr, Seq: seq, Deg: geom.BearingDeg(ap2, target)},
	}
}

// TestFusionLoneAPReportExpires is the leak regression test: a report
// only one AP ever makes must be evicted at PendingTTL and logged —
// the seed controller kept these forever because the only timer was
// armed after the MinAPs threshold.
func TestFusionLoneAPReportExpires(t *testing.T) {
	clk := newFakeClock()
	cap := &capture{}
	e := newTestEngine(t, Config{PendingTTL: 5 * time.Second}, clk, cap)

	e.Ingest(Bearing{AP: "ap1", APPos: geom.Point{X: 4, Y: 2}, MAC: mac(1), Seq: 7, Deg: 30})
	if got := e.PendingCount(); got != 1 {
		t.Fatalf("pending = %d, want 1", got)
	}

	// Before the TTL nothing expires.
	clk.Advance(4 * time.Second)
	e.Sweep(clk.Now())
	if got := e.PendingCount(); got != 1 {
		t.Fatalf("pending after 4s = %d, want 1", got)
	}

	clk.Advance(2 * time.Second)
	e.Sweep(clk.Now())
	if got := e.PendingCount(); got != 0 {
		t.Fatalf("pending after TTL = %d, want 0", got)
	}
	if s := e.Stats(); s.PendingExpired != 1 {
		t.Errorf("PendingExpired = %d, want 1", s.PendingExpired)
	}
	if !cap.logged("expired") {
		t.Error("expiry was not logged")
	}
	if len(cap.decisions()) != 0 {
		t.Errorf("lone-AP report produced decisions: %+v", cap.decisions())
	}
}

// TestFusionDecidedStateBounded is the dedup-leak regression test:
// 100k sequential (MAC, seq) decisions must keep engine state flat —
// one live client, zero pending — asserted via the shard-size
// accessors, not runtime heap stats.
func TestFusionDecidedStateBounded(t *testing.T) {
	clk := newFakeClock()
	cap := &capture{}
	e := newTestEngine(t, Config{}, clk, cap)

	m := mac(42)
	target := geom.Point{X: 9, Y: 6}
	const n = 100_000
	for seq := uint64(1); seq <= n; seq++ {
		for _, b := range bearingsAt(m, seq, target) {
			e.Ingest(b)
		}
	}
	if got := len(cap.decisions()); got != n {
		t.Fatalf("decisions = %d, want %d", got, n)
	}
	if got := e.ClientCount(); got != 1 {
		t.Errorf("ClientCount = %d, want 1 (decided state leaked per seq?)", got)
	}
	if got := e.PendingCount(); got != 0 {
		t.Errorf("PendingCount = %d, want 0", got)
	}
	// Re-sending an already-decided seq inside the window is a dup.
	e.Ingest(bearingsAt(m, n, target)[0])
	if s := e.Stats(); s.DupDropped != 1 {
		t.Errorf("DupDropped = %d, want 1", s.DupDropped)
	}
	ts, ok := e.Track(m)
	if !ok || ts.Fixes != n || ts.LastSeq != n {
		t.Errorf("track = %+v ok=%v, want %d fixes through seq %d", ts, ok, n, n)
	}
}

// TestFusionSeqWindowDedup pins the sliding-window semantics: recent
// decided seqs and seqs older than the window are dups; fresh seqs
// inside the window still fuse.
func TestFusionSeqWindowDedup(t *testing.T) {
	clk := newFakeClock()
	cap := &capture{}
	e := newTestEngine(t, Config{}, clk, cap)

	m := mac(3)
	target := geom.Point{X: 9, Y: 6}
	decide := func(seq uint64) {
		for _, b := range bearingsAt(m, seq, target) {
			e.Ingest(b)
		}
	}
	decide(1000)
	decide(998) // older but inside the window: fuses
	if got := len(cap.decisions()); got != 2 {
		t.Fatalf("decisions = %d, want 2", got)
	}
	decide(1000 - seqWindow) // fell off the back: treated as dup
	if got := len(cap.decisions()); got != 2 {
		t.Errorf("out-of-window seq fused; decisions = %d", len(cap.decisions()))
	}
	if s := e.Stats(); s.DupDropped == 0 {
		t.Error("out-of-window seq not counted as dup")
	}
}

// TestFusionClientCapEvictsLRU: hostile MAC churn cannot grow state
// past MaxClients; the least-recently-active client goes first.
func TestFusionClientCapEvictsLRU(t *testing.T) {
	clk := newFakeClock()
	cap := &capture{}
	e := newTestEngine(t, Config{Shards: 1, MaxClients: 8}, clk, cap)

	for i := 0; i < 50; i++ {
		e.Ingest(Bearing{AP: "ap1", APPos: geom.Point{X: 4, Y: 2}, MAC: mac(i), Seq: 1, Deg: 30})
	}
	if got := e.ClientCount(); got > 8 {
		t.Errorf("ClientCount = %d, want <= 8", got)
	}
	s := e.Stats()
	if s.ClientsEvicted != 50-8 {
		t.Errorf("ClientsEvicted = %d, want %d", s.ClientsEvicted, 50-8)
	}
	// The most recent client survived.
	e.Ingest(Bearing{AP: "ap2", APPos: geom.Point{X: 20, Y: 3}, MAC: mac(49),
		Seq: 1, Deg: geom.BearingDeg(geom.Point{X: 20, Y: 3}, geom.Point{X: 9, Y: 6})})
	if got := e.ClientCount(); got > 8 {
		t.Errorf("ClientCount after touch = %d", got)
	}
}

// TestFusionPendingCapPerClient: one client flooding fresh seqs from a
// single AP is bounded by MaxPendingPerClient.
func TestFusionPendingCapPerClient(t *testing.T) {
	clk := newFakeClock()
	cap := &capture{}
	e := newTestEngine(t, Config{MaxPendingPerClient: 4}, clk, cap)

	m := mac(7)
	for seq := uint64(1); seq <= 100; seq++ {
		clk.Advance(time.Millisecond) // distinct created times
		e.Ingest(Bearing{AP: "ap1", APPos: geom.Point{X: 4, Y: 2}, MAC: m, Seq: seq, Deg: 30})
	}
	if got := e.PendingCount(); got != 4 {
		t.Errorf("PendingCount = %d, want 4", got)
	}
	if s := e.Stats(); s.PendingEvicted != 96 {
		t.Errorf("PendingEvicted = %d, want 96", s.PendingEvicted)
	}
}

// TestFusionForcedTimeout: a degenerate pair (bearings nearly
// parallel) is held, then force-fused at the decision deadline by the
// sweeper, with the Forced flag and counter set.
func TestFusionForcedTimeout(t *testing.T) {
	clk := newFakeClock()
	cap := &capture{}
	e := newTestEngine(t, Config{DecisionTimeout: time.Second}, clk, cap)

	ap1 := geom.Point{X: 20, Y: 5}
	ap2 := geom.Point{X: 12, Y: 13}
	target := geom.Point{X: 16, Y: 9.5} // near the ap1-ap2 line: ~7 deg diversity
	m := mac(9)
	e.Ingest(Bearing{AP: "ap1", APPos: ap1, MAC: m, Seq: 1, Deg: geom.BearingDeg(ap1, target)})
	e.Ingest(Bearing{AP: "ap2", APPos: ap2, MAC: m, Seq: 1, Deg: geom.BearingDeg(ap2, target)})
	if len(cap.decisions()) != 0 {
		t.Fatal("degenerate pair decided immediately")
	}

	clk.Advance(1500 * time.Millisecond)
	e.Sweep(clk.Now())
	decs := cap.decisions()
	if len(decs) != 1 {
		t.Fatalf("decisions after timeout = %d, want 1", len(decs))
	}
	if !decs[0].Forced {
		t.Error("decision not marked Forced")
	}
	if s := e.Stats(); s.ForcedTimeouts != 1 {
		t.Errorf("ForcedTimeouts = %d, want 1", s.ForcedTimeouts)
	}
}

// TestFusionDiversityConfigurable exercises MinDiversityDeg: negative
// disables the geometric-dilution guard entirely, and a custom
// threshold changes what counts as diverse.
func TestFusionDiversityConfigurable(t *testing.T) {
	ap1 := geom.Point{X: 20, Y: 5}
	ap2 := geom.Point{X: 12, Y: 13}
	target := geom.Point{X: 16, Y: 9.5} // near the ap1-ap2 line: ~7 deg diversity
	degenerate := func(e *Engine, m wifi.Addr) {
		e.Ingest(Bearing{AP: "ap1", APPos: ap1, MAC: m, Seq: 1, Deg: geom.BearingDeg(ap1, target)})
		e.Ingest(Bearing{AP: "ap2", APPos: ap2, MAC: m, Seq: 1, Deg: geom.BearingDeg(ap2, target)})
	}

	// Disabled guard: the degenerate pair fuses immediately.
	capOff := &capture{}
	off := newTestEngine(t, Config{MinDiversityDeg: -1}, newFakeClock(), capOff)
	degenerate(off, mac(1))
	if len(capOff.decisions()) != 1 {
		t.Errorf("disabled guard held the decision: %d decisions", len(capOff.decisions()))
	}

	// Default guard (0 -> 15 deg): held.
	capDef := &capture{}
	def := newTestEngine(t, Config{}, newFakeClock(), capDef)
	degenerate(def, mac(2))
	if len(capDef.decisions()) != 0 {
		t.Error("default guard fused a degenerate pair")
	}

	// A stricter threshold holds geometry the default would pass.
	ap3 := geom.Point{X: 4, Y: 2}
	capStrict := &capture{}
	strict := newTestEngine(t, Config{MinDiversityDeg: 89}, newFakeClock(), capStrict)
	m := mac(3)
	good := geom.Point{X: 9, Y: 6}
	strict.Ingest(Bearing{AP: "ap1", APPos: ap3, MAC: m, Seq: 1, Deg: geom.BearingDeg(ap3, good)})
	strict.Ingest(Bearing{AP: "ap2", APPos: ap2, MAC: m, Seq: 1, Deg: geom.BearingDeg(ap2, good)})
	if len(capStrict.decisions()) != 0 {
		t.Error("89-degree threshold passed ordinary geometry")
	}
}

// TestFusionConfigValidate pins the Config-style validation contract.
func TestFusionConfigValidate(t *testing.T) {
	valid := Config{Fence: testFence()}.WithDefaults()
	if err := valid.Validate(); err != nil {
		t.Fatalf("defaulted config invalid: %v", err)
	}
	bad := []Config{
		{}, // no fence
		{Fence: testFence(), Shards: -1},
		{Fence: testFence(), MinAPs: 1},
		{Fence: testFence(), MinDiversityDeg: 95},
		{Fence: testFence(), MaxClients: -5},
		{Fence: testFence(), MaxPendingPerClient: -1},
		{Fence: testFence(), PendingTTL: -time.Second},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustNew did not panic on invalid config")
			}
		}()
		MustNew(Config{})
	}()
}

// TestFusionAPCountShortcut: once every registered AP has reported, a
// non-diverse decision fuses without waiting for the timeout (the seed
// behaviour, preserved).
func TestFusionAPCountShortcut(t *testing.T) {
	clk := newFakeClock()
	cap := &capture{}
	cfg := Config{APCount: func() int { return 2 }}
	e := newTestEngine(t, cfg, clk, cap)

	ap1 := geom.Point{X: 20, Y: 5}
	ap2 := geom.Point{X: 12, Y: 13}
	target := geom.Point{X: 16, Y: 9}
	m := mac(11)
	e.Ingest(Bearing{AP: "ap1", APPos: ap1, MAC: m, Seq: 1, Deg: geom.BearingDeg(ap1, target)})
	e.Ingest(Bearing{AP: "ap2", APPos: ap2, MAC: m, Seq: 1, Deg: geom.BearingDeg(ap2, target)})
	if len(cap.decisions()) != 1 {
		t.Errorf("all-APs-reported shortcut did not fuse: %d decisions", len(cap.decisions()))
	}
}

// TestFusionTracksMobility: fused fixes drive the per-client
// alpha-beta filter; Track and Snapshot expose the filtered trace.
func TestFusionTracksMobility(t *testing.T) {
	clk := newFakeClock()
	cap := &capture{}
	e := newTestEngine(t, Config{}, clk, cap)

	m := mac(5)
	// Walk east at 2 m/s, one fix per second.
	for i := 0; i < 10; i++ {
		target := geom.Point{X: 4 + 2*float64(i), Y: 6}
		for _, b := range bearingsAt(m, uint64(i+1), target) {
			e.Ingest(b)
		}
		clk.Advance(time.Second)
	}
	ts, ok := e.Track(m)
	if !ok {
		t.Fatal("no track for mobile client")
	}
	if ts.Fixes != 10 {
		t.Errorf("fixes = %d, want 10", ts.Fixes)
	}
	final := geom.Point{X: 22, Y: 6}
	if ts.Pos.Dist(final) > 1.5 {
		t.Errorf("filtered pos %v, want near %v", ts.Pos, final)
	}
	if vx := ts.Vel.X; vx < 1.0 || vx > 3.0 {
		t.Errorf("velocity estimate %v, want ~2 m/s east", ts.Vel)
	}
	snap := e.Snapshot()
	if len(snap) != 1 || snap[0].MAC != m {
		t.Errorf("snapshot = %+v, want one entry for %v", snap, m)
	}
	if _, ok := e.Track(mac(99)); ok {
		t.Error("track for unknown MAC")
	}
}

// TestFusionConcurrentIngest hammers the sharded engine from many
// goroutines (run under -race by CI's fusion-stress job) and checks
// exactly one decision per fusable transmission.
func TestFusionConcurrentIngest(t *testing.T) {
	clk := newFakeClock()
	var decided atomic.Uint64
	cfg := Config{
		Fence: testFence(),
		Emit:  func(Decision) { decided.Add(1) },
		// Both APs reporting triggers the all-APs shortcut, so no key
		// can stall on the diversity guard under the frozen test clock.
		APCount: func() int { return 2 },
		Clock:   clk.Now,
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	const nSenders = 8
	const nTx = 200
	targets := make([]geom.Point, nTx)
	for i := range targets {
		targets[i] = geom.Point{X: 2 + float64(i%20), Y: 2 + float64(i%12)}
	}
	var wg sync.WaitGroup
	for g := 0; g < nSenders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Senders alternate between the two AP identities so every
			// (MAC, seq) key receives both bearings, repeatedly.
			for i := 0; i < nTx; i++ {
				for _, b := range bearingsAt(mac(i), uint64(i), targets[i]) {
					e.Ingest(b)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := decided.Load(); got != nTx {
		t.Errorf("decisions = %d, want exactly %d (dups fused or lost)", got, nTx)
	}
	if got := e.ClientCount(); got != nTx {
		t.Errorf("ClientCount = %d, want %d", got, nTx)
	}
	if got := e.PendingCount(); got != 0 {
		t.Errorf("PendingCount = %d, want 0", got)
	}
}

// TestFusionFuseErrorKeepsEntryForRescue: an ingest-path triangulation
// failure (exactly collinear bearings, guard disabled) must not poison
// the dedup window — the entry stays pending and a later diverse
// bearing rescues the transmission, as the seed controller allowed
// (but now bounded by the TTL).
func TestFusionFuseErrorKeepsEntryForRescue(t *testing.T) {
	clk := newFakeClock()
	cap := &capture{}
	e := newTestEngine(t, Config{MinDiversityDeg: -1}, clk, cap)

	// Two parallel vertical bearing lines (x=8 and x=20): Triangulate
	// reliably returns ErrDegenerate for these.
	ap1 := geom.Point{X: 8, Y: 5}
	ap2 := geom.Point{X: 20, Y: 5}
	ap3 := geom.Point{X: 4, Y: 2}
	m := mac(21)
	e.Ingest(Bearing{AP: "ap1", APPos: ap1, MAC: m, Seq: 1, Deg: 90})
	e.Ingest(Bearing{AP: "ap2", APPos: ap2, MAC: m, Seq: 1, Deg: 90})
	if got := len(cap.decisions()); got != 0 {
		t.Fatalf("parallel pair fused: %d decisions", got)
	}
	if s := e.Stats(); s.FuseErrors == 0 {
		t.Fatal("parallel fuse did not count as FuseErrors")
	}
	if got := e.PendingCount(); got != 1 {
		t.Fatalf("failed entry dropped from pending (count %d), cannot be rescued", got)
	}

	// The rescuing crossing bearing arrives and the trio triangulates.
	e.Ingest(Bearing{AP: "ap3", APPos: ap3, MAC: m, Seq: 1, Deg: geom.BearingDeg(ap3, geom.Point{X: 14, Y: 8})})
	decs := cap.decisions()
	if len(decs) != 1 {
		t.Fatalf("rescue bearing produced %d decisions, want 1", len(decs))
	}
	if got := e.PendingCount(); got != 0 {
		t.Errorf("pending after rescue = %d", got)
	}

	// A deadline-path failure, by contrast, drops the entry (its wait
	// is up) without marking the window.
	m2 := mac(22)
	e.Ingest(Bearing{AP: "ap1", APPos: ap1, MAC: m2, Seq: 1, Deg: 90})
	e.Ingest(Bearing{AP: "ap2", APPos: ap2, MAC: m2, Seq: 1, Deg: 90})
	clk.Advance(15 * time.Second)
	e.Sweep(clk.Now())
	if got := e.PendingCount(); got != 0 {
		t.Errorf("pending after failed deadline fuse = %d, want 0", got)
	}
	if cl := e.ClientCount(); cl == 0 {
		t.Error("clients vanished") // both clients remain tracked (no fixes)
	}
}

// TestFusionClosedEngineDropsIngest: bearings after Close are refused
// (the sweeper is gone, so new pendings could never expire).
func TestFusionClosedEngineDropsIngest(t *testing.T) {
	clk := newFakeClock()
	cap := &capture{}
	e := newTestEngine(t, Config{}, clk, cap)
	e.Close()
	e.Ingest(Bearing{AP: "ap1", APPos: geom.Point{X: 4, Y: 2}, MAC: mac(30), Seq: 1, Deg: 30})
	if got := e.PendingCount(); got != 0 {
		t.Errorf("closed engine accepted a bearing (pending %d)", got)
	}
}

// TestFusionSeqCounterReset: real 802.11 sequence counters are 12-bit
// and wrap 4095 -> 0; the dedup window must read the large backward
// jump as a counter reset and keep fusing, not blacklist the client.
func TestFusionSeqCounterReset(t *testing.T) {
	clk := newFakeClock()
	cap := &capture{}
	e := newTestEngine(t, Config{}, clk, cap)

	m := mac(31)
	target := geom.Point{X: 9, Y: 6}
	decide := func(seq uint64) {
		for _, b := range bearingsAt(m, seq, target) {
			e.Ingest(b)
		}
	}
	decide(4094)
	decide(4095)
	decide(0) // the wrap
	decide(1)
	if got := len(cap.decisions()); got != 4 {
		t.Fatalf("decisions across the wrap = %d, want 4 (client blacklisted?)", got)
	}
	// Post-reset the window lives at the new counter: a replay of the
	// fresh seq is still a dup...
	decide(1)
	if got := len(cap.decisions()); got != 4 {
		t.Errorf("replay after reset fused (%d decisions)", got)
	}
	// ...and moderately-old stale seqs still count as replays.
	decide(1 + seqWindow) // advance hi
	e.Ingest(bearingsAt(m, 2, target)[0])
	if s := e.Stats(); s.DupDropped < 2 {
		t.Errorf("DupDropped = %d, want >= 2", s.DupDropped)
	}
	if ts, _ := e.Track(m); ts.Fixes != 5 {
		t.Errorf("fixes = %d, want 5", ts.Fixes)
	}
}
