package iqfile

// Native fuzzing of the capture reader: .saiq files arrive from disk —
// bug-report attachments, regression fixtures — so Read must survive
// arbitrary bytes without panicking or ballooning allocations from a
// hostile header, and whatever it accepts must survive a Write/Read
// round trip bit-exactly (float32 payloads, including NaNs, are
// carried verbatim).

import (
	"bytes"
	"math"
	"testing"
)

func fuzzSeed(c *Capture) []byte {
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func FuzzIQFileRead(f *testing.F) {
	f.Add(fuzzSeed(&Capture{
		SampleRate: 20e6,
		Streams: [][]complex128{
			{complex(0.5, -0.25), complex(-1, 0.125)},
			{complex(0, 1), complex(0.75, -0.75)},
		},
	}))
	f.Add(fuzzSeed(&Capture{SampleRate: 1, Streams: [][]complex128{{}}}))
	f.Add([]byte{0x53, 0x41, 0x49, 0x51}) // magic, no header
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, b []byte) {
		c, err := Read(bytes.NewReader(b))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, c); err != nil {
			t.Fatalf("accepted capture failed to re-encode: %v", err)
		}
		c2, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-encoded capture rejected: %v", err)
		}
		if math.Float64bits(c2.SampleRate) != math.Float64bits(c.SampleRate) {
			t.Fatalf("sample rate diverged: %v -> %v", c.SampleRate, c2.SampleRate)
		}
		if len(c2.Streams) != len(c.Streams) {
			t.Fatalf("channel count diverged: %d -> %d", len(c.Streams), len(c2.Streams))
		}
		for ch := range c.Streams {
			if len(c2.Streams[ch]) != len(c.Streams[ch]) {
				t.Fatalf("ch %d length diverged: %d -> %d", ch, len(c.Streams[ch]), len(c2.Streams[ch]))
			}
			for i, v := range c.Streams[ch] {
				w := c2.Streams[ch][i]
				if math.Float32bits(float32(real(v))) != math.Float32bits(float32(real(w))) ||
					math.Float32bits(float32(imag(v))) != math.Float32bits(float32(imag(w))) {
					t.Fatalf("ch %d sample %d diverged: %v -> %v", ch, i, v, w)
				}
			}
		}
	})
}
