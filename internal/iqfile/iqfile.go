// Package iqfile reads and writes multi-channel I/Q sample captures. The
// SecureAngle prototype buffered 0.4 ms of 20 MHz samples on the WARP and
// shipped them over Ethernet to a host for processing (section 3); this
// package is that workflow's file format, so captures can be recorded
// once and replayed through the AoA pipeline offline, attached to bug
// reports, or used as regression fixtures.
//
// Format (big endian):
//
//	magic   uint32  "SAIQ"
//	version uint16  (1)
//	chans   uint16  number of antenna channels (1..64)
//	rate    float64 sample rate, Hz
//	count   uint64  samples per channel
//	data    count * chans * (float32 I, float32 Q), sample-major
//	         (t0ch0, t0ch1, ..., t0chN, t1ch0, ...)
//
// float32 precision costs ~1e-7 relative error — far below the receiver
// noise floor of any capture worth keeping.
package iqfile

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
)

const (
	magic   = 0x53414951 // "SAIQ"
	version = 1
	// MaxChannels bounds decode allocations against hostile headers.
	MaxChannels = 64
	// MaxSamples bounds decode allocations (1 GiB of float32 pairs per
	// channel is far beyond any packet capture).
	MaxSamples = 1 << 27
)

// Capture is a decoded multi-channel recording.
type Capture struct {
	SampleRate float64
	// Streams holds one sample slice per antenna channel; all the same
	// length.
	Streams [][]complex128
}

var (
	// ErrBadMagic reports a non-SAIQ file.
	ErrBadMagic = errors.New("iqfile: bad magic")
	// ErrBadHeader reports an inconsistent header.
	ErrBadHeader = errors.New("iqfile: bad header")
)

// Write streams a capture to w.
func Write(w io.Writer, c *Capture) error {
	if len(c.Streams) == 0 || len(c.Streams) > MaxChannels {
		return fmt.Errorf("%w: %d channels", ErrBadHeader, len(c.Streams))
	}
	n := len(c.Streams[0])
	for _, s := range c.Streams {
		if len(s) != n {
			return fmt.Errorf("%w: ragged channels", ErrBadHeader)
		}
	}
	bw := bufio.NewWriter(w)
	hdr := make([]byte, 4+2+2+8+8)
	binary.BigEndian.PutUint32(hdr[0:], magic)
	binary.BigEndian.PutUint16(hdr[4:], version)
	binary.BigEndian.PutUint16(hdr[6:], uint16(len(c.Streams)))
	binary.BigEndian.PutUint64(hdr[8:], math.Float64bits(c.SampleRate))
	binary.BigEndian.PutUint64(hdr[16:], uint64(n))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	var buf [8]byte
	for t := 0; t < n; t++ {
		for _, s := range c.Streams {
			v := s[t]
			binary.BigEndian.PutUint32(buf[0:], math.Float32bits(float32(real(v))))
			binary.BigEndian.PutUint32(buf[4:], math.Float32bits(float32(imag(v))))
			if _, err := bw.Write(buf[:]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Read decodes a capture from r.
func Read(r io.Reader) (*Capture, error) {
	br := bufio.NewReader(r)
	hdr := make([]byte, 4+2+2+8+8)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, err
	}
	if binary.BigEndian.Uint32(hdr[0:]) != magic {
		return nil, ErrBadMagic
	}
	if v := binary.BigEndian.Uint16(hdr[4:]); v != version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadHeader, v)
	}
	chans := int(binary.BigEndian.Uint16(hdr[6:]))
	rate := math.Float64frombits(binary.BigEndian.Uint64(hdr[8:]))
	count := binary.BigEndian.Uint64(hdr[16:])
	if chans < 1 || chans > MaxChannels || count > MaxSamples || rate <= 0 || math.IsNaN(rate) {
		return nil, ErrBadHeader
	}
	// Grow the streams as data actually arrives rather than trusting the
	// declared count up front: a hostile 22-byte header must not cost
	// gigabytes of allocation before the first truncated read fails.
	capHint := count
	if capHint > 1<<16 {
		capHint = 1 << 16
	}
	c := &Capture{SampleRate: rate, Streams: make([][]complex128, chans)}
	for i := range c.Streams {
		c.Streams[i] = make([]complex128, 0, capHint)
	}
	var buf [8]byte
	for t := uint64(0); t < count; t++ {
		for ch := 0; ch < chans; ch++ {
			if _, err := io.ReadFull(br, buf[:]); err != nil {
				return nil, fmt.Errorf("iqfile: truncated at sample %d: %w", t, err)
			}
			re := math.Float32frombits(binary.BigEndian.Uint32(buf[0:]))
			im := math.Float32frombits(binary.BigEndian.Uint32(buf[4:]))
			c.Streams[ch] = append(c.Streams[ch], complex(float64(re), float64(im)))
		}
	}
	return c, nil
}

// Save writes a capture to a file path.
func Save(path string, c *Capture) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, c); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a capture from a file path.
func Load(path string) (*Capture, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
