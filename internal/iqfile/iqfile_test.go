package iqfile

import (
	"bytes"
	"math"
	"math/cmplx"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

func randomCapture(seed int64, chans, n int) *Capture {
	rng := rand.New(rand.NewSource(seed))
	c := &Capture{SampleRate: 20e6, Streams: make([][]complex128, chans)}
	for i := range c.Streams {
		c.Streams[i] = make([]complex128, n)
		for t := range c.Streams[i] {
			c.Streams[i][t] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
	}
	return c
}

func TestRoundTrip(t *testing.T) {
	c := randomCapture(1, 8, 500)
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.SampleRate != 20e6 || len(got.Streams) != 8 || len(got.Streams[0]) != 500 {
		t.Fatalf("shape: %v channels, %d samples, rate %v", len(got.Streams), len(got.Streams[0]), got.SampleRate)
	}
	for ch := range c.Streams {
		for i := range c.Streams[ch] {
			if cmplx.Abs(got.Streams[ch][i]-c.Streams[ch][i]) > 1e-6 {
				t.Fatalf("ch %d sample %d: %v vs %v", ch, i, got.Streams[ch][i], c.Streams[ch][i])
			}
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, chans, n uint8) bool {
		ch := 1 + int(chans)%8
		sm := 1 + int(n)%64
		c := randomCapture(seed, ch, sm)
		var buf bytes.Buffer
		if err := Write(&buf, c); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		for i := range c.Streams {
			for j := range c.Streams[i] {
				if cmplx.Abs(got.Streams[i][j]-c.Streams[i][j]) > 1e-5*(1+cmplx.Abs(c.Streams[i][j])) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestWriteRejectsBadInput(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, &Capture{SampleRate: 1}); err == nil {
		t.Error("empty capture accepted")
	}
	ragged := &Capture{SampleRate: 1, Streams: [][]complex128{make([]complex128, 3), make([]complex128, 4)}}
	if err := Write(&buf, ragged); err == nil {
		t.Error("ragged capture accepted")
	}
	tooMany := &Capture{SampleRate: 1, Streams: make([][]complex128, MaxChannels+1)}
	for i := range tooMany.Streams {
		tooMany.Streams[i] = make([]complex128, 1)
	}
	if err := Write(&buf, tooMany); err == nil {
		t.Error("channel overflow accepted")
	}
}

func TestReadRejectsCorruption(t *testing.T) {
	c := randomCapture(2, 2, 10)
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Bad magic.
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xff
	if _, err := Read(bytes.NewReader(bad)); err != ErrBadMagic {
		t.Errorf("bad magic err = %v", err)
	}
	// Bad version.
	bad = append([]byte(nil), good...)
	bad[5] = 99
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Error("bad version accepted")
	}
	// Truncated data.
	if _, err := Read(bytes.NewReader(good[:len(good)-4])); err == nil {
		t.Error("truncated data accepted")
	}
	// Truncated header.
	if _, err := Read(bytes.NewReader(good[:10])); err == nil {
		t.Error("truncated header accepted")
	}
	// Hostile sample count.
	bad = append([]byte(nil), good...)
	for i := 16; i < 24; i++ {
		bad[i] = 0xff
	}
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Error("hostile count accepted")
	}
	// NaN sample rate.
	bad = append([]byte(nil), good...)
	nan := math.Float64bits(math.NaN())
	for i := 0; i < 8; i++ {
		bad[8+i] = byte(nan >> (56 - 8*i))
	}
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Error("NaN rate accepted")
	}
}

func TestSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cap.saiq")
	c := randomCapture(3, 4, 100)
	if err := Save(path, c); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Streams) != 4 || len(got.Streams[0]) != 100 {
		t.Error("shape after load")
	}
	if _, err := Load(filepath.Join(dir, "missing.saiq")); err == nil {
		t.Error("missing file accepted")
	}
}

func BenchmarkWrite8x2000(b *testing.B) {
	c := randomCapture(4, 8, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := Write(&buf, c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRead8x2000(b *testing.B) {
	c := randomCapture(5, 8, 2000)
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Read(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
