package antenna

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func TestNewULAGeometry(t *testing.T) {
	a := NewULA(4, 0.06, DefaultCarrierHz)
	if a.N() != 4 || a.Kind != Linear {
		t.Fatalf("N=%d kind=%v", a.N(), a.Kind)
	}
	// Centred: positions symmetric about origin, spacing 0.06.
	if math.Abs(a.Elements[0].X+0.09) > 1e-12 || math.Abs(a.Elements[3].X-0.09) > 1e-12 {
		t.Errorf("elements: %v", a.Elements)
	}
	for _, e := range a.Elements {
		if e.Y != 0 {
			t.Errorf("ULA element off axis: %v", e)
		}
	}
	d01 := a.Elements[1].Sub(a.Elements[0]).Norm()
	if math.Abs(d01-0.06) > 1e-12 {
		t.Errorf("spacing = %v", d01)
	}
}

func TestNewHalfWaveULA(t *testing.T) {
	a := NewHalfWaveULA(8, DefaultCarrierHz)
	spacing := a.Elements[1].Sub(a.Elements[0]).Norm()
	// Paper quotes 6.13 cm.
	if math.Abs(spacing-0.0613) > 3e-4 {
		t.Errorf("half-wave spacing = %v m, want ~0.0613", spacing)
	}
	if math.Abs(spacing-a.Wavelength()/2) > 1e-12 {
		t.Errorf("spacing != lambda/2")
	}
}

func TestNewUCAGeometry(t *testing.T) {
	a := NewUCA(8, 0.047, DefaultCarrierHz)
	if a.N() != 8 || a.Kind != Circular {
		t.Fatalf("N=%d kind=%v", a.N(), a.Kind)
	}
	// All elements equidistant from centre; adjacent sides 4.7 cm.
	r0 := a.Elements[0].Norm()
	for i, e := range a.Elements {
		if math.Abs(e.Norm()-r0) > 1e-12 {
			t.Errorf("element %d radius %v != %v", i, e.Norm(), r0)
		}
		next := a.Elements[(i+1)%8]
		if side := e.Dist(next); math.Abs(side-0.047) > 1e-12 {
			t.Errorf("side %d = %v", i, side)
		}
	}
	// Octagon circumradius for side 4.7 cm is ~6.14 cm.
	if math.Abs(r0-0.0614) > 2e-4 {
		t.Errorf("circumradius = %v", r0)
	}
}

func TestConstructorPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewULA(1, 0.06, DefaultCarrierHz) },
		func() { NewUCA(2, 0.047, DefaultCarrierHz) },
		func() { NewHalfWaveULA(8, DefaultCarrierHz).ScanGrid(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSteeringUnitModulus(t *testing.T) {
	a := NewUCA(8, 0.047, DefaultCarrierHz)
	f := func(bearing float64) bool {
		s := a.Steering(math.Mod(bearing, 360))
		for _, v := range s {
			if math.Abs(cmplx.Abs(v)-1) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSteeringULABroadsideIsFlat(t *testing.T) {
	// A wave from broadside (90 deg global, perpendicular to the x-axis
	// array) reaches all elements in phase.
	a := NewHalfWaveULA(8, DefaultCarrierHz)
	s := a.Steering(90)
	for i, v := range s {
		if cmplx.Abs(v-1) > 1e-9 {
			t.Errorf("broadside element %d = %v, want 1", i, v)
		}
	}
}

func TestSteeringULAEndfirePhaseProgression(t *testing.T) {
	// From endfire (0 deg, along +x), adjacent half-wavelength elements
	// differ by pi.
	a := NewHalfWaveULA(4, DefaultCarrierHz)
	s := a.Steering(0)
	for i := 1; i < 4; i++ {
		dphi := cmplx.Phase(s[i] / s[i-1])
		if math.Abs(math.Abs(dphi)-math.Pi) > 1e-9 {
			t.Errorf("endfire phase step %d = %v, want +-pi", i, dphi)
		}
	}
}

func TestSteeringTwoAntennaEquationOne(t *testing.T) {
	// Equation 1 of the paper: theta = arcsin((phase2-phase1)/pi) for a
	// half-wavelength pair, with theta measured from broadside. Check the
	// steering model satisfies it.
	a := NewHalfWaveULA(2, DefaultCarrierHz)
	for _, broadside := range []float64{-60, -30, 0, 15, 45, 75} {
		global := GlobalFromBroadside(broadside)
		s := a.Steering(global)
		dphi := cmplx.Phase(s[1] / s[0]) // phase of antenna 2 minus antenna 1
		got := math.Asin(dphi/math.Pi) * 180 / math.Pi
		// Our element 1 is at +x; positive broadside angle means source
		// toward +x, which reaches element 1 earlier -> positive dphi.
		if math.Abs(got-broadside) > 1e-6 {
			t.Errorf("broadside %v: eq(1) gives %v", broadside, got)
		}
	}
}

func TestSteeringMirrorAmbiguityULA(t *testing.T) {
	// theta and -theta (mirror across the array axis) give identical
	// steering vectors for a linear array — footnote 1.
	a := NewHalfWaveULA(8, DefaultCarrierHz)
	up := a.Steering(30)    // 30 deg above axis
	down := a.Steering(-30) // mirror image below axis
	for i := range up {
		if cmplx.Abs(up[i]-down[i]) > 1e-9 {
			t.Fatal("ULA should not distinguish mirror bearings")
		}
	}
}

func TestSteeringUCAResolvesMirror(t *testing.T) {
	a := NewUCA(8, 0.047, DefaultCarrierHz)
	up := a.Steering(30)
	down := a.Steering(-30)
	var diff float64
	for i := range up {
		diff += cmplx.Abs(up[i] - down[i])
	}
	if diff < 0.1 {
		t.Error("UCA failed to distinguish mirror bearings")
	}
}

func TestSteeringInto(t *testing.T) {
	a := NewUCA(8, 0.047, DefaultCarrierHz)
	want := a.Steering(123)
	got := make([]complex128, 8)
	a.SteeringInto(got, 123)
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("SteeringInto differs from Steering")
		}
	}
}

func TestSubarray(t *testing.T) {
	a := NewHalfWaveULA(8, DefaultCarrierHz)
	sub := a.Subarray(0, 1, 2, 3)
	if sub.N() != 4 {
		t.Fatalf("N = %d", sub.N())
	}
	if sub.Elements[0] != a.Elements[0] || sub.Elements[3] != a.Elements[3] {
		t.Error("subarray elements wrong")
	}
	if sub.Kind != Linear || sub.CarrierHz != a.CarrierHz {
		t.Error("subarray metadata wrong")
	}
}

func TestScanGrid(t *testing.T) {
	lin := NewHalfWaveULA(4, DefaultCarrierHz)
	gl := lin.ScanGrid(1)
	if len(gl) != 180 || gl[0] != 0 || gl[len(gl)-1] != 179 {
		t.Errorf("linear grid: len=%d first=%v last=%v", len(gl), gl[0], gl[len(gl)-1])
	}
	circ := NewUCA(8, 0.047, DefaultCarrierHz)
	gc := circ.ScanGrid(1)
	if len(gc) != 360 {
		t.Errorf("circular grid len = %d", len(gc))
	}
}

func TestBroadsideConversions(t *testing.T) {
	cases := []struct{ global, broadside float64 }{
		{90, 0}, {0, 90}, {180, -90}, {45, 45}, {135, -45},
	}
	for _, c := range cases {
		if got := BroadsideDeg(c.global); math.Abs(got-c.broadside) > 1e-9 {
			t.Errorf("BroadsideDeg(%v) = %v, want %v", c.global, got, c.broadside)
		}
	}
	// Round trip on the upper half plane.
	for b := -89.0; b < 90; b += 7 {
		if got := BroadsideDeg(GlobalFromBroadside(b)); math.Abs(got-b) > 1e-9 {
			t.Errorf("round trip %v -> %v", b, got)
		}
	}
}

func TestRadius(t *testing.T) {
	a := NewUCA(8, 0.047, DefaultCarrierHz)
	if math.Abs(a.Radius()-a.Elements[0].Norm()) > 1e-15 {
		t.Error("UCA radius")
	}
	l := NewULA(3, 0.1, DefaultCarrierHz)
	if math.Abs(l.Radius()-0.1) > 1e-12 {
		t.Errorf("ULA radius = %v", l.Radius())
	}
}

func TestKindString(t *testing.T) {
	if Linear.String() != "linear" || Circular.String() != "circular" {
		t.Error("Kind strings")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind should still render")
	}
}
