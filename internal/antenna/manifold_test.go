package antenna

import (
	"math/cmplx"
	"testing"
)

func TestManifoldMatchesSteering(t *testing.T) {
	for _, arr := range []*Array{
		NewHalfWaveULA(8, DefaultCarrierHz),
		NewUCA(8, 0.047, DefaultCarrierHz),
		NewHalfWaveULA(4, DefaultCarrierHz).Rotate(-37),
	} {
		grid := arr.ScanGrid(0.5)
		mf := NewManifold(arr, grid)
		if mf.NumAngles() != len(grid) {
			t.Fatalf("NumAngles = %d, want %d", mf.NumAngles(), len(grid))
		}
		if mf.N() != arr.N() {
			t.Fatalf("N = %d, want %d", mf.N(), arr.N())
		}
		if mf.Array() != arr {
			t.Fatal("Array() does not return the source array")
		}
		for g, th := range grid {
			if mf.AngleAt(g) != th {
				t.Fatalf("AngleAt(%d) = %v, want %v", g, mf.AngleAt(g), th)
			}
			want := arr.Steering(th)
			got := mf.Steering(g)
			conj := mf.SteeringConj(g)
			for e := range want {
				if got[e] != want[e] {
					t.Fatalf("%v at grid %d elem %d: steering %v, want %v", arr.Kind, g, e, got[e], want[e])
				}
				if conj[e] != cmplx.Conj(want[e]) {
					t.Fatalf("%v at grid %d elem %d: conj %v, want %v", arr.Kind, g, e, conj[e], cmplx.Conj(want[e]))
				}
			}
		}
	}
}

func TestManifoldAnglesDegIsCopy(t *testing.T) {
	arr := NewHalfWaveULA(4, DefaultCarrierHz)
	mf := NewManifoldForScan(arr, 1)
	a := mf.AnglesDeg()
	a[0] = -999
	if mf.AngleAt(0) == -999 {
		t.Fatal("AnglesDeg aliases internal storage")
	}
}
