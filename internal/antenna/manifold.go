package antenna

// Manifold is a precomputed scan manifold for one (array, grid) pair: the
// steering vector of every grid bearing, plus its conjugate, evaluated
// once. The per-packet estimation path scans several hundred bearings per
// packet; recomputing each steering vector costs a sine/cosine pair per
// element per bearing, which an AP serving many clients pays thousands of
// times per second for values that never change after installation. A
// Manifold is immutable after construction and safe for concurrent use.
type Manifold struct {
	arr       *Array
	anglesDeg []float64
	// steer and conj are row-major: row g (length N) is the steering
	// vector, respectively its elementwise conjugate, for anglesDeg[g].
	steer []complex128
	conj  []complex128
}

// NewManifold evaluates the array's steering vectors over the grid.
func NewManifold(a *Array, gridDeg []float64) *Manifold {
	n := a.N()
	mf := &Manifold{
		arr:       a,
		anglesDeg: append([]float64(nil), gridDeg...),
		steer:     make([]complex128, len(gridDeg)*n),
		conj:      make([]complex128, len(gridDeg)*n),
	}
	for g, th := range gridDeg {
		row := mf.steer[g*n : (g+1)*n]
		a.SteeringInto(row, th)
		crow := mf.conj[g*n : (g+1)*n]
		for i, v := range row {
			crow[i] = complex(real(v), -imag(v))
		}
	}
	return mf
}

// NewManifoldForScan builds the manifold over the array's own ScanGrid.
func NewManifoldForScan(a *Array, stepDeg float64) *Manifold {
	return NewManifold(a, a.ScanGrid(stepDeg))
}

// Array returns the array the manifold was built for.
func (mf *Manifold) Array() *Array { return mf.arr }

// N returns the number of array elements per steering vector.
func (mf *Manifold) N() int { return mf.arr.N() }

// NumAngles returns the number of grid bearings.
func (mf *Manifold) NumAngles() int { return len(mf.anglesDeg) }

// AnglesDeg returns a copy of the bearing grid.
func (mf *Manifold) AnglesDeg() []float64 {
	return append([]float64(nil), mf.anglesDeg...)
}

// AngleAt returns grid bearing g.
func (mf *Manifold) AngleAt(g int) float64 { return mf.anglesDeg[g] }

// Steering returns the precomputed steering vector for grid index g. The
// returned slice aliases the manifold's storage and must not be modified.
func (mf *Manifold) Steering(g int) []complex128 {
	n := mf.arr.N()
	return mf.steer[g*n : (g+1)*n : (g+1)*n]
}

// SteeringConj returns the elementwise conjugate of the steering vector
// for grid index g (the rows of the manifold's conjugate transpose). The
// returned slice aliases the manifold's storage and must not be modified.
func (mf *Manifold) SteeringConj(g int) []complex128 {
	n := mf.arr.N()
	return mf.conj[g*n : (g+1)*n : (g+1)*n]
}
