// Package antenna models the access point's antenna arrays: the paper's
// two arrangements (a uniform linear array at half-wavelength spacing,
// 6.13 cm, and a circular octagon with 4.7 cm sides and an antenna at each
// corner), their steering vectors at the 2.4 GHz carrier, and angle-grid
// conventions.
//
// Conventions: element positions are metres relative to the array centre;
// bearings are degrees counter-clockwise from the +x axis ("global"
// bearings, shared with package geom). A linear array along the x axis
// cannot distinguish a source at bearing theta from one at -theta (mirror
// across the array axis) — footnote 1 of the paper — so its usable scan
// grid covers only the upper half-plane, reported as broadside angles in
// (-90, 90). The circular array covers the full 0-360 degrees.
package antenna

import (
	"fmt"
	"math"
	"math/cmplx"

	"secureangle/internal/geom"
)

// SpeedOfLight in m/s.
const SpeedOfLight = 299792458.0

// DefaultCarrierHz is the 2.4 GHz-band carrier used throughout: 2.447 GHz,
// whose half wavelength is the paper's 6.13 cm element spacing.
const DefaultCarrierHz = 2.447e9

// Kind distinguishes the two array arrangements of the prototype.
type Kind int

const (
	// Linear is the half-wavelength uniform linear array.
	Linear Kind = iota
	// Circular is the octagonal arrangement with an antenna per corner.
	Circular
)

// String names the array kind.
func (k Kind) String() string {
	switch k {
	case Linear:
		return "linear"
	case Circular:
		return "circular"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Array is an antenna array: element positions plus the carrier frequency
// that fixes the wavelength for steering calculations.
type Array struct {
	Kind      Kind
	Elements  []geom.Point // positions relative to array centre, metres
	CarrierHz float64
	// AxisDeg is the orientation of a linear array's element line
	// (degrees CCW from +x). It determines which half-plane ScanGrid
	// covers; irrelevant for circular arrays.
	AxisDeg float64
}

// NewULA returns an n-element uniform linear array along the x axis with
// the given element spacing in metres, centred on the origin.
func NewULA(n int, spacing, carrierHz float64) *Array {
	if n < 2 {
		panic("antenna: NewULA requires n >= 2")
	}
	a := &Array{Kind: Linear, CarrierHz: carrierHz}
	mid := float64(n-1) / 2
	for i := 0; i < n; i++ {
		a.Elements = append(a.Elements, geom.Point{X: (float64(i) - mid) * spacing})
	}
	return a
}

// NewHalfWaveULA returns an n-element ULA at exactly half-wavelength
// spacing for the given carrier (6.13 cm at the default carrier).
func NewHalfWaveULA(n int, carrierHz float64) *Array {
	return NewULA(n, SpeedOfLight/carrierHz/2, carrierHz)
}

// NewUCA returns an n-element uniform circular array whose adjacent
// elements are side metres apart (a regular n-gon with that side length;
// the paper's octagon has 4.7 cm sides), centred on the origin with
// element 0 on the +x axis.
func NewUCA(n int, side, carrierHz float64) *Array {
	if n < 3 {
		panic("antenna: NewUCA requires n >= 3")
	}
	r := side / (2 * math.Sin(math.Pi/float64(n)))
	a := &Array{Kind: Circular, CarrierHz: carrierHz}
	for i := 0; i < n; i++ {
		phi := 2 * math.Pi * float64(i) / float64(n)
		a.Elements = append(a.Elements, geom.Point{X: r * math.Cos(phi), Y: r * math.Sin(phi)})
	}
	return a
}

// N returns the number of elements.
func (a *Array) N() int { return len(a.Elements) }

// Wavelength returns the carrier wavelength in metres.
func (a *Array) Wavelength() float64 { return SpeedOfLight / a.CarrierHz }

// Radius returns the maximum element distance from the array centre.
func (a *Array) Radius() float64 {
	var r float64
	for _, e := range a.Elements {
		r = math.Max(r, e.Norm())
	}
	return r
}

// Steering returns the steering vector for a plane wave arriving from the
// given global bearing (degrees): element i carries phase
// exp(+j 2 pi / lambda * p_i . d) with d the unit vector pointing from the
// array toward the source. Elements nearer the source lead in phase, which
// is the sign convention the channel simulator also uses, so simulated
// covariances and MUSIC scans agree by construction.
func (a *Array) Steering(bearingDeg float64) []complex128 {
	rad := bearingDeg * math.Pi / 180
	d := geom.Point{X: math.Cos(rad), Y: math.Sin(rad)}
	k := 2 * math.Pi / a.Wavelength()
	out := make([]complex128, len(a.Elements))
	for i, p := range a.Elements {
		out[i] = cmplx.Rect(1, k*p.Dot(d))
	}
	return out
}

// SteeringInto fills dst with the steering vector for bearingDeg,
// avoiding allocation on pseudospectrum scan hot paths.
func (a *Array) SteeringInto(dst []complex128, bearingDeg float64) {
	rad := bearingDeg * math.Pi / 180
	d := geom.Point{X: math.Cos(rad), Y: math.Sin(rad)}
	k := 2 * math.Pi / a.Wavelength()
	for i, p := range a.Elements {
		dst[i] = cmplx.Rect(1, k*p.Dot(d))
	}
}

// Subarray returns a new array using only the elements at the given
// indices (Figure 7 evaluates 2-, 4-, 6- and 8-antenna subsets of the
// same capture). The kind and orientation are preserved.
func (a *Array) Subarray(idx ...int) *Array {
	sub := &Array{Kind: a.Kind, CarrierHz: a.CarrierHz, AxisDeg: a.AxisDeg}
	for _, i := range idx {
		sub.Elements = append(sub.Elements, a.Elements[i])
	}
	return sub
}

// Rotate returns a copy of the array rotated by deg degrees CCW about its
// centre — how an installer orients a linear array so its unambiguous
// half-plane faces the clients of interest.
func (a *Array) Rotate(deg float64) *Array {
	rad := deg * math.Pi / 180
	c, s := math.Cos(rad), math.Sin(rad)
	out := &Array{Kind: a.Kind, CarrierHz: a.CarrierHz, AxisDeg: a.AxisDeg + deg}
	for _, e := range a.Elements {
		out.Elements = append(out.Elements, geom.Point{X: c*e.X - s*e.Y, Y: s*e.X + c*e.Y})
	}
	return out
}

// ScanGrid returns the bearing grid (global degrees) a pseudospectrum
// should be evaluated on for this array kind: the full circle for
// circular arrays; for linear arrays, the unambiguous half-plane on the
// counter-clockwise side of the element axis (for the default axis along
// +x, global 0..180, i.e. broadside -90..+90 — footnote 1 of the paper),
// stepped by stepDeg. Grid values may exceed [0, 360) for rotated arrays;
// they remain valid bearings modulo 360.
func (a *Array) ScanGrid(stepDeg float64) []float64 {
	if stepDeg <= 0 {
		panic("antenna: ScanGrid step must be positive")
	}
	var lo, hi float64
	if a.Kind == Linear {
		lo, hi = a.AxisDeg, a.AxisDeg+180
	} else {
		lo, hi = 0, 360
	}
	var out []float64
	for b := lo; b < hi-1e-9; b += stepDeg {
		out = append(out, b)
	}
	return out
}

// BroadsideDeg converts a global bearing (degrees CCW from +x) to the
// linear array's broadside convention in (-90, 90], where 0 is broadside
// (+y) and positive angles rotate toward +x. Figures 6 and 7 plot this
// convention.
func BroadsideDeg(globalDeg float64) float64 {
	// A linear array on the x axis aliases the lower half-plane onto the
	// upper one, so first fold the bearing into [0, 180]...
	g := math.Mod(globalDeg, 360)
	if g < 0 {
		g += 360
	}
	if g > 180 {
		g = 360 - g
	}
	// ...then measure from broadside (+y): result in [-90, 90].
	return 90 - g
}

// GlobalFromBroadside inverts BroadsideDeg for the upper half-plane.
func GlobalFromBroadside(broadsideDeg float64) float64 {
	return 90 - broadsideDeg
}
