package music

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"sort"

	"secureangle/internal/antenna"
	"secureangle/internal/cmat"
)

// RootMUSIC is the polynomial-rooting variant of MUSIC for uniform linear
// arrays: instead of scanning a bearing grid, it factors the noise-
// subspace polynomial
//
//	P(z) = a(1/z*)^H En En^H a(z),  a(z) = [1, z, ..., z^(m-1)]^T
//
// and maps the roots nearest the unit circle to arrival angles. Grid-free
// estimates avoid quantisation to the scan step, at the cost of only
// working on ULAs (the Vandermonde steering structure is essential).
type RootMUSIC struct {
	// Sources fixes the signal-subspace dimension; 0 selects via MDL
	// using Samples.
	Sources int
	Samples int
}

// ErrNotULA is returned when the array is not a uniform linear array.
var ErrNotULA = errors.New("music: root-MUSIC requires a uniform linear array")

// Name identifies the estimator.
func (r *RootMUSIC) Name() string { return "root-MUSIC" }

// ulaSpacingWavelengths validates the array is a ULA and returns its
// element spacing in wavelengths and axis direction (degrees).
func ulaSpacingWavelengths(arr *antenna.Array) (float64, float64, error) {
	if arr.Kind != antenna.Linear || arr.N() < 2 {
		return 0, 0, ErrNotULA
	}
	d0 := arr.Elements[1].Sub(arr.Elements[0])
	for i := 2; i < arr.N(); i++ {
		di := arr.Elements[i].Sub(arr.Elements[i-1])
		if di.Sub(d0).Norm() > 1e-9 {
			return 0, 0, ErrNotULA
		}
	}
	axis := math.Atan2(d0.Y, d0.X) * 180 / math.Pi
	return d0.Norm() / arr.Wavelength(), axis, nil
}

// DOAs returns the estimated arrival bearings (global degrees, in the
// array's unambiguous half-plane), strongest-root first.
func (r *RootMUSIC) DOAs(cov *cmat.Matrix, arr *antenna.Array) ([]float64, error) {
	spacing, axisDeg, err := ulaSpacingWavelengths(arr)
	if err != nil {
		return nil, err
	}
	m := arr.N()
	if cov.Rows != m {
		return nil, fmt.Errorf("music: covariance is %dx%d but array has %d elements", cov.Rows, cov.Cols, m)
	}
	eig, err := cmat.HermEig(cov)
	if err != nil {
		return nil, err
	}
	k := r.Sources
	if k <= 0 {
		n := r.Samples
		if n <= 0 {
			n = 1000
		}
		k = MDLSources(eig.Values, n)
	}
	if k >= m {
		k = m - 1
	}
	if k < 1 {
		k = 1
	}

	// C = En En^H; the polynomial coefficients are the diagonal sums:
	// P(z) = sum_{l=-(m-1)}^{m-1} c_l z^l with c_l = sum of the l-th
	// diagonal of C. Multiply by z^{m-1} for an ordinary polynomial of
	// degree 2(m-1).
	en := eig.NoiseSubspace(k)
	c := en.Mul(en.Herm())
	coeffs := make([]complex128, 2*m-1) // index l+m-1
	for l := -(m - 1); l <= m-1; l++ {
		var s complex128
		for i := 0; i < m; i++ {
			j := i + l
			if j < 0 || j >= m {
				continue
			}
			// a(z)^H C a(z): the z^l coefficient collects C[i][j] with
			// j - i = l.
			s += c.At(i, j)
		}
		coeffs[l+m-1] = s
	}

	roots, err := polyRoots(coeffs)
	if err != nil {
		return nil, err
	}

	// Keep roots strictly inside the unit circle (the conjugate-
	// reciprocal pairs outside mirror them), sorted by closeness to the
	// circle; take the k closest.
	type cand struct {
		z    complex128
		dist float64
	}
	var cands []cand
	for _, z := range roots {
		mag := cmplx.Abs(z)
		if mag >= 1 {
			continue
		}
		cands = append(cands, cand{z, 1 - mag})
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].dist < cands[b].dist })
	if len(cands) > k {
		cands = cands[:k]
	}

	var out []float64
	for _, cd := range cands {
		// arg(z) = 2 pi d/lambda cos(theta - axis)... for the ULA along
		// its axis the steering phase step between adjacent elements for
		// a wave from angle phi relative to the axis is
		// 2 pi spacing cos(phi). Invert:
		ph := cmplx.Phase(cd.z)
		x := ph / (2 * math.Pi * spacing)
		if x > 1 {
			x = 1
		}
		if x < -1 {
			x = -1
		}
		rel := math.Acos(x) * 180 / math.Pi // in [0, 180]: the CCW half-plane
		out = append(out, axisDeg+rel)
	}
	return out, nil
}

// Pseudospectrum implements Estimator by synthesising narrow Gaussian
// peaks at the rooted DOAs over the grid, so RootMUSIC can slot into any
// code that expects a spectrum. The DOAs method is the primary interface.
func (r *RootMUSIC) Pseudospectrum(cov *cmat.Matrix, arr *antenna.Array, gridDeg []float64) (*Pseudospectrum, error) {
	doas, err := r.DOAs(cov, arr)
	if err != nil {
		return nil, err
	}
	ps := &Pseudospectrum{AnglesDeg: append([]float64(nil), gridDeg...), P: make([]float64, len(gridDeg))}
	const sigma = 1.0 // degrees
	for rank, d := range doas {
		h := 1.0 / float64(rank+1)
		for i, g := range gridDeg {
			diff := angularSep(g, d)
			ps.P[i] += h * math.Exp(-diff*diff/(2*sigma*sigma))
		}
	}
	return ps, nil
}

// polyRoots finds all roots of the polynomial
// p(z) = coeffs[0] + coeffs[1] z + ... + coeffs[n] z^n
// with the Durand-Kerner (Weierstrass) iteration. Leading/trailing zero
// coefficients are trimmed (roots at the origin are reported directly).
func polyRoots(coeffs []complex128) ([]complex128, error) {
	// Trim the leading (highest-order) zeros.
	n := len(coeffs)
	for n > 0 && coeffs[n-1] == 0 {
		n--
	}
	coeffs = coeffs[:n]
	if len(coeffs) <= 1 {
		return nil, errors.New("music: degenerate polynomial")
	}
	// Factor out z^q for trailing (constant-side) zeros.
	var zeroRoots []complex128
	for len(coeffs) > 1 && coeffs[0] == 0 {
		coeffs = coeffs[1:]
		zeroRoots = append(zeroRoots, 0)
	}
	deg := len(coeffs) - 1
	if deg == 0 {
		return zeroRoots, nil
	}
	// Normalise to monic.
	monic := make([]complex128, len(coeffs))
	lead := coeffs[deg]
	for i := range coeffs {
		monic[i] = coeffs[i] / lead
	}
	eval := func(z complex128) complex128 {
		s := complex(0, 0)
		for i := deg; i >= 0; i-- {
			s = s*z + monic[i]
		}
		return s
	}
	// Durand-Kerner starting points: a slightly irrational spiral.
	roots := make([]complex128, deg)
	for i := range roots {
		roots[i] = cmplx.Rect(0.9+0.1*float64(i)/float64(deg), 2*math.Pi*float64(i)/float64(deg)+0.4)
	}
	const maxIter = 500
	for iter := 0; iter < maxIter; iter++ {
		var maxStep float64
		for i := range roots {
			num := eval(roots[i])
			den := complex(1, 0)
			for j := range roots {
				if i == j {
					continue
				}
				den *= roots[i] - roots[j]
			}
			if den == 0 {
				// Perturb coincident estimates.
				roots[i] += complex(1e-6, 1e-6)
				continue
			}
			step := num / den
			roots[i] -= step
			if s := cmplx.Abs(step); s > maxStep {
				maxStep = s
			}
		}
		if maxStep < 1e-12 {
			break
		}
	}
	return append(zeroRoots, roots...), nil
}
