package music

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"

	"secureangle/internal/antenna"
	"secureangle/internal/cmat"
)

// RootMUSIC is the polynomial-rooting variant of MUSIC for uniform linear
// arrays: instead of scanning a bearing grid, it factors the noise-
// subspace polynomial
//
//	P(z) = a(1/z*)^H En En^H a(z),  a(z) = [1, z, ..., z^(m-1)]^T
//
// and maps the roots nearest the unit circle to arrival angles. Grid-free
// estimates avoid quantisation to the scan step, at the cost of only
// working on ULAs (the Vandermonde steering structure is essential).
type RootMUSIC struct {
	// Sources fixes the signal-subspace dimension; 0 selects via MDL
	// using Samples.
	Sources int
	Samples int
}

// ErrNotULA is returned when the array is not a uniform linear array.
var ErrNotULA = errors.New("music: root-MUSIC requires a uniform linear array")

// Name identifies the estimator.
func (r *RootMUSIC) Name() string { return "root-MUSIC" }

// ulaSpacingWavelengths validates the array is a ULA and returns its
// element spacing in wavelengths and axis direction (degrees).
func ulaSpacingWavelengths(arr *antenna.Array) (float64, float64, error) {
	if arr.Kind != antenna.Linear || arr.N() < 2 {
		return 0, 0, ErrNotULA
	}
	d0 := arr.Elements[1].Sub(arr.Elements[0])
	for i := 2; i < arr.N(); i++ {
		di := arr.Elements[i].Sub(arr.Elements[i-1])
		if di.Sub(d0).Norm() > 1e-9 {
			return 0, 0, ErrNotULA
		}
	}
	axis := math.Atan2(d0.Y, d0.X) * 180 / math.Pi
	return d0.Norm() / arr.Wavelength(), axis, nil
}

// ULAGeometry reports whether arr is a uniform linear array and, if so,
// returns its element spacing in wavelengths and axis bearing in global
// degrees — the precondition the grid-free estimators need, exported so
// pipelines can select root-MUSIC/ESPRIT at construction time.
func ULAGeometry(arr *antenna.Array) (spacingWl, axisDeg float64, ok bool) {
	s, a, err := ulaSpacingWavelengths(arr)
	return s, a, err == nil
}

// RootScratch holds the polynomial buffers RootDOAsFromEig reuses across
// packets so the grid-free hot path performs no heap allocation. The
// zero value is ready to use; not safe for concurrent use.
type RootScratch struct {
	coeffs []complex128
	monic  []complex128
	roots  []complex128
	dists  []float64
	doas   []float64
}

func growC(buf *[]complex128, n int) []complex128 {
	if cap(*buf) < n {
		*buf = make([]complex128, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

func growF(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// DOAs returns the estimated arrival bearings (global degrees, in the
// array's unambiguous half-plane), strongest-root first.
func (r *RootMUSIC) DOAs(cov *cmat.Matrix, arr *antenna.Array) ([]float64, error) {
	spacing, axisDeg, err := ulaSpacingWavelengths(arr)
	if err != nil {
		return nil, err
	}
	m := arr.N()
	if cov.Rows != m {
		return nil, fmt.Errorf("music: covariance is %dx%d but array has %d elements", cov.Rows, cov.Cols, m)
	}
	eig, err := cmat.HermEig(cov)
	if err != nil {
		return nil, err
	}
	k := r.Sources
	if k <= 0 {
		n := r.Samples
		if n <= 0 {
			n = 1000
		}
		k = MDLSources(eig.Values, n)
	}
	if k >= m {
		k = m - 1
	}
	if k < 1 {
		k = 1
	}
	doas, err := RootDOAsFromEig(eig, k, spacing, axisDeg, nil)
	if err != nil {
		return nil, err
	}
	return append([]float64(nil), doas...), nil
}

// RootDOAsFromEig runs the root-MUSIC polynomial stage from an existing
// eigendecomposition with k signal sources, for a ULA of the given
// spacing (wavelengths) and axis bearing — the pipeline form that shares
// the packet's one eigendecomposition. Buffers come from ws (nil for a
// throwaway scratch); the returned slice aliases ws and is valid until
// its next use.
func RootDOAsFromEig(eig *cmat.EigResult, k int, spacingWl, axisDeg float64, ws *RootScratch) ([]float64, error) {
	if ws == nil {
		ws = &RootScratch{}
	}
	m := len(eig.Values)
	if k < 1 || k >= m {
		return nil, fmt.Errorf("music: source count %d out of range [1, %d)", k, m)
	}

	// The noise-subspace projector C = En En^H enters only through its
	// diagonal sums: P(z) = sum_l c_l z^l with c_l = sum_{j-i=l} C[i][j]
	// (times z^{m-1} for an ordinary polynomial of degree 2(m-1)).
	// Accumulate the sums column-by-column straight from the
	// eigenvector matrix — no subspace copy, no matrix product.
	ev := eig.Vectors
	coeffs := growC(&ws.coeffs, 2*m-1) // index l+m-1
	for i := range coeffs {
		coeffs[i] = 0
	}
	for c := k; c < m; c++ {
		for i := 0; i < m; i++ {
			vi := ev.At(i, c)
			for j := 0; j < m; j++ {
				vj := ev.At(j, c)
				// C[i][j] += V[i][c] * conj(V[j][c]) lands in c_{j-i}.
				coeffs[j-i+m-1] += vi * complex(real(vj), -imag(vj))
			}
		}
	}

	roots, err := polyRootsScratch(coeffs, ws)
	if err != nil {
		return nil, err
	}

	// Keep roots strictly inside the unit circle (the conjugate-
	// reciprocal pairs outside mirror them), sorted by closeness to the
	// circle; take the k closest.
	zs := roots[:0] // compact the inside-circle candidates in place
	dists := growF(&ws.dists, len(roots))[:0]
	for _, z := range roots {
		mag := cmplx.Abs(z)
		if mag >= 1 {
			continue
		}
		zs = append(zs, z)
		dists = append(dists, 1-mag)
	}
	// Insertion sort by distance to the circle, ascending (<= 14 roots).
	for i := 1; i < len(zs); i++ {
		j := i
		for j > 0 && dists[j] < dists[j-1] {
			dists[j], dists[j-1] = dists[j-1], dists[j]
			zs[j], zs[j-1] = zs[j-1], zs[j]
			j--
		}
	}
	if len(zs) > k {
		zs = zs[:k]
	}

	out := growF(&ws.doas, len(zs))[:0]
	for _, z := range zs {
		// arg(z) = 2 pi d/lambda cos(theta - axis)... for the ULA along
		// its axis the steering phase step between adjacent elements for
		// a wave from angle phi relative to the axis is
		// 2 pi spacing cos(phi). Invert:
		ph := cmplx.Phase(z)
		x := ph / (2 * math.Pi * spacingWl)
		if x > 1 {
			x = 1
		}
		if x < -1 {
			x = -1
		}
		rel := math.Acos(x) * 180 / math.Pi // in [0, 180]: the CCW half-plane
		out = append(out, axisDeg+rel)
	}
	return out, nil
}

// Pseudospectrum implements Estimator by synthesising narrow Gaussian
// peaks at the rooted DOAs over the grid, so RootMUSIC can slot into any
// code that expects a spectrum. The DOAs method is the primary interface.
func (r *RootMUSIC) Pseudospectrum(cov *cmat.Matrix, arr *antenna.Array, gridDeg []float64) (*Pseudospectrum, error) {
	doas, err := r.DOAs(cov, arr)
	if err != nil {
		return nil, err
	}
	ps := &Pseudospectrum{AnglesDeg: append([]float64(nil), gridDeg...), P: make([]float64, len(gridDeg))}
	const sigma = 1.0 // degrees
	for rank, d := range doas {
		h := 1.0 / float64(rank+1)
		for i, g := range gridDeg {
			diff := angularSep(g, d)
			ps.P[i] += h * math.Exp(-diff*diff/(2*sigma*sigma))
		}
	}
	return ps, nil
}

// polyRoots finds all roots of the polynomial
// p(z) = coeffs[0] + coeffs[1] z + ... + coeffs[n] z^n
// with the Durand-Kerner (Weierstrass) iteration. Leading/trailing zero
// coefficients are trimmed (roots at the origin are reported directly).
func polyRoots(coeffs []complex128) ([]complex128, error) {
	var ws RootScratch
	rs, err := polyRootsScratch(coeffs, &ws)
	if err != nil {
		return nil, err
	}
	return append([]complex128(nil), rs...), nil
}

// polyRootsScratch is polyRoots with all buffers drawn from ws; the
// returned slice aliases ws.roots.
func polyRootsScratch(coeffs []complex128, ws *RootScratch) ([]complex128, error) {
	// Trim the leading (highest-order) zeros.
	n := len(coeffs)
	for n > 0 && coeffs[n-1] == 0 {
		n--
	}
	coeffs = coeffs[:n]
	if len(coeffs) <= 1 {
		return nil, errors.New("music: degenerate polynomial")
	}
	// Factor out z^q for trailing (constant-side) zeros: roots at the
	// origin, reported directly at the front of the output.
	nzero := 0
	for len(coeffs) > 1 && coeffs[0] == 0 {
		coeffs = coeffs[1:]
		nzero++
	}
	deg := len(coeffs) - 1
	out := growC(&ws.roots, nzero+deg)
	for i := 0; i < nzero; i++ {
		out[i] = 0
	}
	if deg == 0 {
		return out[:nzero], nil
	}
	// Normalise to monic.
	monic := growC(&ws.monic, len(coeffs))
	lead := coeffs[deg]
	for i := range coeffs {
		monic[i] = coeffs[i] / lead
	}
	// Durand-Kerner starting points: a slightly irrational spiral.
	roots := out[nzero:]
	for i := range roots {
		roots[i] = cmplx.Rect(0.9+0.1*float64(i)/float64(deg), 2*math.Pi*float64(i)/float64(deg)+0.4)
	}
	const maxIter = 500
	for iter := 0; iter < maxIter; iter++ {
		var maxStep float64
		for i := range roots {
			// Horner evaluation of the monic polynomial at roots[i].
			num := complex(0, 0)
			for c := deg; c >= 0; c-- {
				num = num*roots[i] + monic[c]
			}
			den := complex(1, 0)
			for j := range roots {
				if i == j {
					continue
				}
				den *= roots[i] - roots[j]
			}
			if den == 0 {
				// Perturb coincident estimates.
				roots[i] += complex(1e-6, 1e-6)
				continue
			}
			step := num / den
			roots[i] -= step
			if s := cmplx.Abs(step); s > maxStep {
				maxStep = s
			}
		}
		if maxStep < 1e-12 {
			break
		}
	}
	return out, nil
}
