package music

import (
	"fmt"
	"math"

	"secureangle/internal/antenna"
	"secureangle/internal/cmat"
)

// ManifoldEstimator is the manifold-aware fast path of the Estimator
// contract: evaluation over a precomputed scan manifold, with the number
// of snapshots behind the covariance threaded through for the estimators
// whose model-order selection needs it (MUSIC's MDL). All estimators in
// this package implement it; the grid-based Estimator signature remains as
// an adapter that builds a one-shot manifold.
type ManifoldEstimator interface {
	Estimator
	// PseudospectrumOnManifold evaluates likelihood over the manifold's
	// grid. snapshots is the number of time samples behind r; pass 0 when
	// unknown (estimator-specific defaults apply).
	PseudospectrumOnManifold(r *cmat.Matrix, mf *antenna.Manifold, snapshots int) (*Pseudospectrum, error)
}

func checkManifold(r *cmat.Matrix, mf *antenna.Manifold) error {
	if r.Rows != mf.N() {
		return fmt.Errorf("music: covariance is %dx%d but manifold has %d elements", r.Rows, r.Cols, mf.N())
	}
	return nil
}

// PseudospectrumOnManifold implements ManifoldEstimator.
func (m *MUSIC) PseudospectrumOnManifold(r *cmat.Matrix, mf *antenna.Manifold, snapshots int) (*Pseudospectrum, error) {
	if err := checkManifold(r, mf); err != nil {
		return nil, err
	}
	eig, err := cmat.HermEig(r)
	if err != nil {
		return nil, err
	}
	ps, _, err := m.PseudospectrumFromEig(eig, mf, snapshots)
	return ps, err
}

// PseudospectrumFromEig evaluates the MUSIC scan from an already-computed
// eigendecomposition of the covariance — the pipeline computes one
// eigendecomposition per packet and shares it between the scan and the
// subspace statistics. It returns the signal-subspace dimension actually
// used (Sources, or the MDL choice from snapshots when Sources is zero).
func (m *MUSIC) PseudospectrumFromEig(eig *cmat.EigResult, mf *antenna.Manifold, snapshots int) (*Pseudospectrum, int, error) {
	ps := &Pseudospectrum{AnglesDeg: mf.AnglesDeg(), P: make([]float64, mf.NumAngles())}
	k, err := m.PseudospectrumFromEigInto(ps, eig, mf, snapshots)
	if err != nil {
		return nil, 0, err
	}
	return ps, k, nil
}

// sourceCount resolves the signal-subspace dimension: the fixed Sources
// override, else MDL on the eigenvalues with the best snapshot count
// available, clamped to [1, rows-1].
func (m *MUSIC) sourceCount(eigvals []float64, snapshots int) int {
	rows := len(eigvals)
	k := m.Sources
	if k <= 0 {
		n := snapshots
		if n <= 0 {
			n = m.Samples
		}
		if n <= 0 {
			n = 1000
		}
		k = MDLSources(eigvals, n)
	}
	if k >= rows {
		k = rows - 1
	}
	if k < 1 {
		k = 1
	}
	return k
}

// PseudospectrumFromEigInto is PseudospectrumFromEig scanning into a
// caller-provided spectrum: ps.P must already have the manifold's length
// (ps.AnglesDeg is the caller's concern — the pipeline shares one grid
// slice across reports). Nothing is allocated.
func (m *MUSIC) PseudospectrumFromEigInto(ps *Pseudospectrum, eig *cmat.EigResult, mf *antenna.Manifold, snapshots int) (int, error) {
	rows := len(eig.Values)
	if rows != mf.N() {
		return 0, fmt.Errorf("music: eigensystem is %dx%d but manifold has %d elements", rows, rows, mf.N())
	}
	if len(ps.P) != mf.NumAngles() {
		return 0, fmt.Errorf("music: spectrum has %d bins but manifold has %d angles", len(ps.P), mf.NumAngles())
	}
	k := m.sourceCount(eig.Values, snapshots)

	nn := rows
	ev := eig.Vectors
	for g := range ps.P {
		a := mf.Steering(g)
		den := 0.0
		// For each noise-subspace column j: |sum_e conj(V[e][k+j]) a[e]|^2.
		for j := k; j < nn; j++ {
			var s complex128
			for e := 0; e < nn; e++ {
				v := ev.At(e, j)
				s += complex(real(v), -imag(v)) * a[e]
			}
			den += real(s)*real(s) + imag(s)*imag(s)
		}
		if den < 1e-18 {
			den = 1e-18
		}
		ps.P[g] = 1 / den
	}
	return k, nil
}

// PseudospectrumOnManifold implements ManifoldEstimator.
func (Bartlett) PseudospectrumOnManifold(r *cmat.Matrix, mf *antenna.Manifold, _ int) (*Pseudospectrum, error) {
	if err := checkManifold(r, mf); err != nil {
		return nil, err
	}
	nn := r.Rows
	den := float64(nn)
	ps := &Pseudospectrum{AnglesDeg: mf.AnglesDeg(), P: make([]float64, mf.NumAngles())}
	for g := range ps.P {
		a := mf.Steering(g)
		ac := mf.SteeringConj(g)
		// a^H R a, accumulated row by row as conj(a_e) * (R a)_e.
		var num complex128
		for e := 0; e < nn; e++ {
			row := r.Data[e*nn : (e+1)*nn]
			var ra complex128
			for f, v := range row {
				ra += v * a[f]
			}
			num += ac[e] * ra
		}
		ps.P[g] = math.Max(real(num)/den, 0)
	}
	return ps, nil
}

// PseudospectrumOnManifold implements ManifoldEstimator.
func (mv MVDR) PseudospectrumOnManifold(r *cmat.Matrix, mf *antenna.Manifold, _ int) (*Pseudospectrum, error) {
	if err := checkManifold(r, mf); err != nil {
		return nil, err
	}
	load := mv.DiagonalLoad
	if load <= 0 {
		load = 1e-3
	}
	reg := r.Clone()
	tr := real(r.Trace()) / float64(r.Rows)
	for i := 0; i < reg.Rows; i++ {
		reg.Set(i, i, reg.At(i, i)+complex(load*tr, 0))
	}
	inv, err := cmat.Inverse(reg)
	if err != nil {
		return nil, err
	}
	nn := r.Rows
	ps := &Pseudospectrum{AnglesDeg: mf.AnglesDeg(), P: make([]float64, mf.NumAngles())}
	for g := range ps.P {
		a := mf.Steering(g)
		ac := mf.SteeringConj(g)
		var den complex128
		for e := 0; e < nn; e++ {
			row := inv.Data[e*nn : (e+1)*nn]
			var ria complex128
			for f, v := range row {
				ria += v * a[f]
			}
			den += ac[e] * ria
		}
		d := real(den)
		if d < 1e-18 {
			d = 1e-18
		}
		ps.P[g] = 1 / d
	}
	return ps, nil
}
