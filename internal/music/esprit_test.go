package music

import (
	"math"
	"math/cmplx"
	"sort"
	"testing"

	"secureangle/internal/antenna"
	"secureangle/internal/cmat"
)

func TestEigenvaluesGeneralKnown(t *testing.T) {
	// [[2, 1], [0, 3]]: eigenvalues 2, 3.
	a := cmat.FromRows([][]complex128{{2, 1}, {0, 3}})
	vals, err := eigenvaluesGeneral(a)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(vals, func(i, j int) bool { return real(vals[i]) < real(vals[j]) })
	if cmplx.Abs(vals[0]-2) > 1e-8 || cmplx.Abs(vals[1]-3) > 1e-8 {
		t.Errorf("eigenvalues = %v", vals)
	}
}

func TestEigenvaluesGeneralRotation(t *testing.T) {
	// A unitary diag(e^{i*0.5}, e^{-i*1.2}) similarity-transformed must
	// keep its eigenvalues.
	d := cmat.FromRows([][]complex128{
		{cmplx.Rect(1, 0.5), 0},
		{0, cmplx.Rect(1, -1.2)},
	})
	// Similarity transform with a non-trivial invertible T.
	tm := cmat.FromRows([][]complex128{{1, 2i}, {0.5, 1}})
	ti, err := cmat.Inverse(tm)
	if err != nil {
		t.Fatal(err)
	}
	a := tm.Mul(d).Mul(ti)
	vals, err := eigenvaluesGeneral(a)
	if err != nil {
		t.Fatal(err)
	}
	found1, found2 := false, false
	for _, v := range vals {
		if cmplx.Abs(v-cmplx.Rect(1, 0.5)) < 1e-7 {
			found1 = true
		}
		if cmplx.Abs(v-cmplx.Rect(1, -1.2)) < 1e-7 {
			found2 = true
		}
	}
	if !found1 || !found2 {
		t.Errorf("eigenvalues = %v", vals)
	}
}

func TestEigenvaluesGeneralSingle(t *testing.T) {
	a := cmat.FromRows([][]complex128{{3 + 4i}})
	vals, err := eigenvaluesGeneral(a)
	if err != nil || len(vals) != 1 || vals[0] != 3+4i {
		t.Errorf("vals = %v, err = %v", vals, err)
	}
}

func TestESPRITSingleSource(t *testing.T) {
	arr := antenna.NewHalfWaveULA(8, antenna.DefaultCarrierHz)
	for _, bearing := range []float64{40, 90, 150} {
		streams := synthStreams(arr, []float64{bearing}, []float64{1}, 25, 500, 30)
		est := &ESPRIT{Sources: 1}
		doas, err := est.DOAs(cov(t, streams), arr)
		if err != nil {
			t.Fatal(err)
		}
		if len(doas) != 1 || math.Abs(doas[0]-bearing) > 1 {
			t.Errorf("bearing %v: ESPRIT = %v", bearing, doas)
		}
	}
}

func TestESPRITTwoSources(t *testing.T) {
	arr := antenna.NewHalfWaveULA(8, antenna.DefaultCarrierHz)
	streams := synthStreams(arr, []float64{55, 125}, []float64{1, 0.9}, 25, 1000, 31)
	est := &ESPRIT{Sources: 2}
	doas, err := est.DOAs(cov(t, streams), arr)
	if err != nil {
		t.Fatal(err)
	}
	sort.Float64s(doas)
	if len(doas) != 2 || math.Abs(doas[0]-55) > 2 || math.Abs(doas[1]-125) > 2 {
		t.Errorf("ESPRIT DOAs = %v, want ~[55 125]", doas)
	}
}

func TestESPRITMatchesRootMUSIC(t *testing.T) {
	// Both grid-free methods should agree to a fraction of a degree on a
	// clean single source.
	arr := antenna.NewHalfWaveULA(8, antenna.DefaultCarrierHz)
	const truth = 67.42
	streams := synthStreams(arr, []float64{truth}, []float64{1}, 30, 1000, 32)
	r := cov(t, streams)
	esp, err := (&ESPRIT{Sources: 1}).DOAs(r, arr)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := (&RootMUSIC{Sources: 1}).DOAs(r, arr)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(esp[0]-rm[0]) > 0.3 {
		t.Errorf("ESPRIT %v vs root-MUSIC %v", esp[0], rm[0])
	}
	if math.Abs(esp[0]-truth) > 0.3 {
		t.Errorf("ESPRIT error %v", math.Abs(esp[0]-truth))
	}
}

func TestESPRITRejectsNonULA(t *testing.T) {
	uca := antenna.NewUCA(8, 0.047, antenna.DefaultCarrierHz)
	if _, err := (&ESPRIT{Sources: 1}).DOAs(cmat.Identity(8), uca); err != ErrNotULA {
		t.Errorf("err = %v", err)
	}
}

func TestESPRITPseudospectrumAndName(t *testing.T) {
	arr := antenna.NewHalfWaveULA(8, antenna.DefaultCarrierHz)
	streams := synthStreams(arr, []float64{100}, []float64{1}, 25, 500, 33)
	est := &ESPRIT{Sources: 1}
	ps, err := est.Pseudospectrum(cov(t, streams), arr, arr.ScanGrid(1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ps.PeakBearing()-100) > 1.5 {
		t.Errorf("peak %v", ps.PeakBearing())
	}
	if est.Name() != "ESPRIT" {
		t.Error("name")
	}
}

func BenchmarkESPRIT(b *testing.B) {
	arr := antenna.NewHalfWaveULA(8, antenna.DefaultCarrierHz)
	streams := synthStreams(arr, []float64{60, 120}, []float64{1, 0.8}, 25, 800, 34)
	r, err := Covariance(streams)
	if err != nil {
		b.Fatal(err)
	}
	est := &ESPRIT{Sources: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.DOAs(r, arr); err != nil {
			b.Fatal(err)
		}
	}
}
