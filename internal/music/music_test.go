package music

import (
	"math"
	"testing"

	"secureangle/internal/antenna"
	"secureangle/internal/cmat"
	"secureangle/internal/rng"
)

// synthCovariance builds streams for plane waves from the given bearings
// with the given amplitudes, plus noise, and returns their covariance.
// Independent QPSK-ish symbols per source make the sources incoherent.
func synthStreams(arr *antenna.Array, bearings []float64, amps []float64, snrDB float64, nSamp int, seed int64) [][]complex128 {
	src := rng.New(seed)
	n := arr.N()
	streams := make([][]complex128, n)
	for a := range streams {
		streams[a] = make([]complex128, nSamp)
	}
	for s, b := range bearings {
		steer := arr.Steering(b)
		for t := 0; t < nSamp; t++ {
			sym := src.ComplexGaussian(1) // independent per source and time
			for a := 0; a < n; a++ {
				streams[a][t] += complex(amps[s], 0) * sym * steer[a]
			}
		}
	}
	var sp float64
	for a := 0; a < n; a++ {
		for _, v := range streams[a] {
			sp += real(v)*real(v) + imag(v)*imag(v)
		}
	}
	sp /= float64(n * nSamp)
	sigma2 := sp / math.Pow(10, snrDB/10)
	for a := 0; a < n; a++ {
		src.AddAWGN(streams[a], sigma2)
	}
	return streams
}

func cov(t *testing.T, streams [][]complex128) *cmat.Matrix {
	t.Helper()
	r, err := Covariance(streams)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestCovarianceErrors(t *testing.T) {
	if _, err := Covariance(nil); err == nil {
		t.Error("nil streams accepted")
	}
	if _, err := Covariance([][]complex128{{}}); err == nil {
		t.Error("empty streams accepted")
	}
	if _, err := Covariance([][]complex128{{1}, {1, 2}}); err == nil {
		t.Error("ragged streams accepted")
	}
}

func TestCovarianceSingleTone(t *testing.T) {
	// One plane wave, no noise: R must be amp^2 * a a^H.
	arr := antenna.NewHalfWaveULA(4, antenna.DefaultCarrierHz)
	streams := synthStreams(arr, []float64{60}, []float64{2}, 300, 500, 1)
	r := cov(t, streams)
	if !r.IsHermitian(1e-9) {
		t.Error("covariance not Hermitian")
	}
	// Rank ~1: second eigenvalue tiny.
	e, err := cmat.HermEig(r)
	if err != nil {
		t.Fatal(err)
	}
	if e.Values[1] > 1e-6*e.Values[0] {
		t.Errorf("noise-free single source should be rank 1: %v", e.Values)
	}
}

func TestMUSICSingleSourceULA(t *testing.T) {
	arr := antenna.NewHalfWaveULA(8, antenna.DefaultCarrierHz)
	grid := arr.ScanGrid(0.5)
	for _, bearing := range []float64{30, 60, 90, 120, 150} {
		streams := synthStreams(arr, []float64{bearing}, []float64{1}, 20, 400, 2)
		est := &MUSIC{Sources: 1}
		ps, err := est.Pseudospectrum(cov(t, streams), arr, grid)
		if err != nil {
			t.Fatal(err)
		}
		if got := ps.PeakBearing(); math.Abs(got-bearing) > 1.5 {
			t.Errorf("bearing %v: MUSIC peak at %v", bearing, got)
		}
	}
}

func TestMUSICSingleSourceUCA(t *testing.T) {
	arr := antenna.NewUCA(8, 0.047, antenna.DefaultCarrierHz)
	grid := arr.ScanGrid(1)
	for _, bearing := range []float64{0, 45, 123, 217, 300, 359} {
		streams := synthStreams(arr, []float64{bearing}, []float64{1}, 20, 400, 3)
		est := &MUSIC{Sources: 1}
		ps, err := est.Pseudospectrum(cov(t, streams), arr, grid)
		if err != nil {
			t.Fatal(err)
		}
		got := ps.PeakBearing()
		if angularSep(got, bearing) > 2.5 {
			t.Errorf("bearing %v: UCA MUSIC peak at %v", bearing, got)
		}
	}
}

func TestMUSICTwoIncoherentSources(t *testing.T) {
	arr := antenna.NewHalfWaveULA(8, antenna.DefaultCarrierHz)
	grid := arr.ScanGrid(0.5)
	streams := synthStreams(arr, []float64{60, 120}, []float64{1, 0.8}, 25, 800, 4)
	est := &MUSIC{Sources: 2}
	ps, err := est.Pseudospectrum(cov(t, streams), arr, grid)
	if err != nil {
		t.Fatal(err)
	}
	peaks := ps.Peaks(10, 20)
	if len(peaks) < 2 {
		t.Fatalf("found %d peaks, want >= 2", len(peaks))
	}
	found60, found120 := false, false
	for _, p := range peaks[:2] {
		if math.Abs(p.BearingDeg-60) < 3 {
			found60 = true
		}
		if math.Abs(p.BearingDeg-120) < 3 {
			found120 = true
		}
	}
	if !found60 || !found120 {
		t.Errorf("peaks %v do not cover 60 and 120", peaks)
	}
}

func TestMUSICResolutionImprovesWithAntennas(t *testing.T) {
	// Two sources 20 degrees apart: 8 antennas resolve them, 2 cannot.
	full := antenna.NewHalfWaveULA(8, antenna.DefaultCarrierHz)
	bearings := []float64{80, 100}
	amps := []float64{1, 0.9}

	resolve := func(n int) bool {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		arr := full.Subarray(idx...)
		streams := synthStreams(arr, bearings, amps, 25, 800, 5)
		est := &MUSIC{Sources: 2}
		ps, err := est.Pseudospectrum(cov(t, streams), arr, arr.ScanGrid(0.5))
		if err != nil {
			t.Fatal(err)
		}
		peaks := ps.Peaks(8, 15)
		if len(peaks) < 2 {
			return false
		}
		ok80 := math.Abs(peaks[0].BearingDeg-80) < 5 || math.Abs(peaks[1].BearingDeg-80) < 5
		ok100 := math.Abs(peaks[0].BearingDeg-100) < 5 || math.Abs(peaks[1].BearingDeg-100) < 5
		return ok80 && ok100
	}
	if !resolve(8) {
		t.Error("8 antennas failed to resolve 20-degree separation")
	}
	if resolve(2) {
		t.Error("2 antennas unexpectedly resolved 20-degree separation")
	}
}

func TestBartlettSingleSource(t *testing.T) {
	arr := antenna.NewHalfWaveULA(8, antenna.DefaultCarrierHz)
	streams := synthStreams(arr, []float64{75}, []float64{1}, 20, 400, 6)
	ps, err := Bartlett{}.Pseudospectrum(cov(t, streams), arr, arr.ScanGrid(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if got := ps.PeakBearing(); math.Abs(got-75) > 2.5 {
		t.Errorf("Bartlett peak at %v, want 75", got)
	}
}

func TestMVDRSingleSource(t *testing.T) {
	arr := antenna.NewHalfWaveULA(8, antenna.DefaultCarrierHz)
	streams := synthStreams(arr, []float64{105}, []float64{1}, 20, 400, 7)
	ps, err := MVDR{}.Pseudospectrum(cov(t, streams), arr, arr.ScanGrid(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if got := ps.PeakBearing(); math.Abs(got-105) > 2.5 {
		t.Errorf("MVDR peak at %v, want 105", got)
	}
}

func TestMUSICSharperThanBartlett(t *testing.T) {
	// Peak width at -3 dB: MUSIC should be narrower than Bartlett.
	arr := antenna.NewHalfWaveULA(8, antenna.DefaultCarrierHz)
	streams := synthStreams(arr, []float64{90}, []float64{1}, 25, 800, 8)
	r := cov(t, streams)
	grid := arr.ScanGrid(0.25)

	width := func(e Estimator) float64 {
		ps, err := e.Pseudospectrum(r, arr, grid)
		if err != nil {
			t.Fatal(err)
		}
		db := ps.NormalizedDB()
		count := 0
		for _, v := range db {
			if v > -3 {
				count++
			}
		}
		return float64(count) * 0.25
	}
	wm := width(&MUSIC{Sources: 1})
	wb := width(Bartlett{})
	if wm >= wb {
		t.Errorf("MUSIC width %v not sharper than Bartlett %v", wm, wb)
	}
}

func TestForwardBackwardPreservesSingleSource(t *testing.T) {
	arr := antenna.NewHalfWaveULA(8, antenna.DefaultCarrierHz)
	streams := synthStreams(arr, []float64{70}, []float64{1}, 20, 400, 9)
	r := ForwardBackward(cov(t, streams))
	if !r.IsHermitian(1e-9) {
		t.Error("FB result not Hermitian")
	}
	ps, err := (&MUSIC{Sources: 1}).Pseudospectrum(r, arr, arr.ScanGrid(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if got := ps.PeakBearing(); math.Abs(got-70) > 2 {
		t.Errorf("FB MUSIC peak at %v, want 70", got)
	}
}

// coherentStreams builds two fully-coherent paths (same symbol stream,
// fixed relative phase) — the multipath regime where plain MUSIC breaks
// and smoothing is required.
func coherentStreams(arr *antenna.Array, b1, b2 float64, g2 complex128, snrDB float64, nSamp int, seed int64) [][]complex128 {
	src := rng.New(seed)
	n := arr.N()
	s1 := arr.Steering(b1)
	s2 := arr.Steering(b2)
	streams := make([][]complex128, n)
	for a := range streams {
		streams[a] = make([]complex128, nSamp)
	}
	for t := 0; t < nSamp; t++ {
		sym := src.ComplexGaussian(1)
		for a := 0; a < n; a++ {
			streams[a][t] += sym * (s1[a] + g2*s2[a])
		}
	}
	var sp float64
	for a := 0; a < n; a++ {
		for _, v := range streams[a] {
			sp += real(v)*real(v) + imag(v)*imag(v)
		}
	}
	sp /= float64(n * nSamp)
	sigma2 := sp / math.Pow(10, snrDB/10)
	for a := 0; a < n; a++ {
		src.AddAWGN(streams[a], sigma2)
	}
	return streams
}

func TestSpatialSmoothingResolvesCoherentPaths(t *testing.T) {
	arr := antenna.NewHalfWaveULA(8, antenna.DefaultCarrierHz)
	streams := coherentStreams(arr, 60, 120, 0.7i, 30, 1000, 10)
	r := cov(t, streams)

	// Smoothed: 5-element subarrays out of 8.
	rs, err := SpatialSmooth(ForwardBackward(r), 5)
	if err != nil {
		t.Fatal(err)
	}
	sub := arr.Subarray(0, 1, 2, 3, 4)
	ps, err := (&MUSIC{Sources: 2}).Pseudospectrum(rs, sub, sub.ScanGrid(0.5))
	if err != nil {
		t.Fatal(err)
	}
	peaks := ps.Peaks(10, 15)
	if len(peaks) < 2 {
		t.Fatalf("smoothed MUSIC found %d peaks", len(peaks))
	}
	got60, got120 := false, false
	for _, p := range peaks[:2] {
		if math.Abs(p.BearingDeg-60) < 6 {
			got60 = true
		}
		if math.Abs(p.BearingDeg-120) < 6 {
			got120 = true
		}
	}
	if !got60 || !got120 {
		t.Errorf("smoothed peaks %v do not cover 60/120", peaks)
	}
}

func TestSpatialSmoothErrors(t *testing.T) {
	r := cmat.Identity(4)
	if _, err := SpatialSmooth(r, 1); err == nil {
		t.Error("sub=1 accepted")
	}
	if _, err := SpatialSmooth(r, 5); err == nil {
		t.Error("sub>m accepted")
	}
	out, err := SpatialSmooth(r, 3)
	if err != nil || out.Rows != 3 {
		t.Errorf("smooth: %v, %v", out, err)
	}
}

func TestMDLAndAICSourceCount(t *testing.T) {
	arr := antenna.NewHalfWaveULA(8, antenna.DefaultCarrierHz)
	for _, nSrc := range []int{1, 2, 3} {
		bearings := []float64{50, 90, 140}[:nSrc]
		amps := []float64{1, 1, 1}[:nSrc]
		streams := synthStreams(arr, bearings, amps, 20, 1000, int64(11+nSrc))
		r := cov(t, streams)
		e, err := cmat.HermEig(r)
		if err != nil {
			t.Fatal(err)
		}
		if got := MDLSources(e.Values, 1000); got != nSrc {
			t.Errorf("MDL: %d sources detected, want %d", got, nSrc)
		}
		if got := AICSources(e.Values, 1000); got < nSrc {
			t.Errorf("AIC: %d sources detected, want >= %d", got, nSrc)
		}
	}
}

func TestMUSICAutoSourceCount(t *testing.T) {
	arr := antenna.NewHalfWaveULA(8, antenna.DefaultCarrierHz)
	streams := synthStreams(arr, []float64{60, 120}, []float64{1, 1}, 20, 1000, 14)
	est := &MUSIC{Sources: 0, Samples: 1000} // MDL decides
	ps, err := est.Pseudospectrum(cov(t, streams), arr, arr.ScanGrid(0.5))
	if err != nil {
		t.Fatal(err)
	}
	peaks := ps.Peaks(10, 15)
	if len(peaks) < 2 {
		t.Fatalf("auto MUSIC found %d peaks", len(peaks))
	}
}

func TestEstimatorDimensionMismatch(t *testing.T) {
	arr := antenna.NewHalfWaveULA(4, antenna.DefaultCarrierHz)
	r := cmat.Identity(8)
	grid := arr.ScanGrid(1)
	for _, e := range []Estimator{&MUSIC{Sources: 1}, Bartlett{}, MVDR{}} {
		if _, err := e.Pseudospectrum(r, arr, grid); err == nil {
			t.Errorf("%s accepted mismatched covariance", e.Name())
		}
	}
}

func TestEstimatorNames(t *testing.T) {
	if (&MUSIC{}).Name() != "MUSIC" || (Bartlett{}).Name() != "Bartlett" || (MVDR{}).Name() != "MVDR" {
		t.Error("estimator names")
	}
}

func TestPeaksEdgeCases(t *testing.T) {
	empty := &Pseudospectrum{}
	if empty.Peaks(5, 20) != nil {
		t.Error("empty pseudospectrum produced peaks")
	}
	// Monotone ramp: single endpoint peak.
	ps := &Pseudospectrum{AnglesDeg: []float64{0, 1, 2, 3}, P: []float64{1, 2, 3, 4}}
	peaks := ps.Peaks(0.5, 30)
	if len(peaks) != 1 || peaks[0].BearingDeg != 3 {
		t.Errorf("ramp peaks = %v", peaks)
	}
}

func TestNormalizedDB(t *testing.T) {
	ps := &Pseudospectrum{AnglesDeg: []float64{0, 1}, P: []float64{1, 10}}
	db := ps.NormalizedDB()
	if math.Abs(db[1]) > 1e-12 || math.Abs(db[0]+10) > 1e-9 {
		t.Errorf("NormalizedDB = %v", db)
	}
}

func BenchmarkCovariance8x2000(b *testing.B) {
	arr := antenna.NewHalfWaveULA(8, antenna.DefaultCarrierHz)
	streams := synthStreams(arr, []float64{60}, []float64{1}, 20, 2000, 15)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Covariance(streams); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMUSICPseudospectrum(b *testing.B) {
	arr := antenna.NewUCA(8, 0.047, antenna.DefaultCarrierHz)
	streams := synthStreams(arr, []float64{60}, []float64{1}, 20, 500, 16)
	r, err := Covariance(streams)
	if err != nil {
		b.Fatal(err)
	}
	grid := arr.ScanGrid(1)
	est := &MUSIC{Sources: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.Pseudospectrum(r, arr, grid); err != nil {
			b.Fatal(err)
		}
	}
}
