package music

import (
	"fmt"
	"math"
	"math/cmplx"

	"secureangle/internal/antenna"
	"secureangle/internal/cmat"
)

// ESPRIT is the least-squares ESPRIT estimator for uniform linear arrays:
// it exploits the shift invariance of the ULA's signal subspace — the
// subspace seen by elements 1..m-1 equals the subspace seen by elements
// 2..m rotated by the per-element phase step — and recovers arrival
// angles from the eigenvalues of the k x k rotation operator, with no
// grid and no spectral search at all.
type ESPRIT struct {
	// Sources fixes the signal-subspace dimension; 0 selects via MDL
	// using Samples.
	Sources int
	Samples int
}

// Name identifies the estimator.
func (e *ESPRIT) Name() string { return "ESPRIT" }

// DOAs returns the arrival bearings (global degrees in the array's
// unambiguous half-plane).
func (e *ESPRIT) DOAs(cov *cmat.Matrix, arr *antenna.Array) ([]float64, error) {
	spacing, axisDeg, err := ulaSpacingWavelengths(arr)
	if err != nil {
		return nil, err
	}
	m := arr.N()
	if cov.Rows != m {
		return nil, fmt.Errorf("music: covariance is %dx%d but array has %d elements", cov.Rows, cov.Cols, m)
	}
	eig, err := cmat.HermEig(cov)
	if err != nil {
		return nil, err
	}
	k := e.Sources
	if k <= 0 {
		n := e.Samples
		if n <= 0 {
			n = 1000
		}
		k = MDLSources(eig.Values, n)
	}
	return ESPRITDOAsFromEig(eig, k, spacing, axisDeg)
}

// ESPRITDOAsFromEig runs the ESPRIT rotation-operator stage from an
// existing eigendecomposition with k signal sources, for a ULA of the
// given spacing (wavelengths) and axis bearing — the pipeline form that
// shares the packet's one eigendecomposition. k is clamped to [1, m-1].
func ESPRITDOAsFromEig(eig *cmat.EigResult, k int, spacingWl, axisDeg float64) ([]float64, error) {
	m := len(eig.Values)
	if k >= m {
		k = m - 1
	}
	if k < 1 {
		k = 1
	}

	es := eig.SignalSubspace(k)
	// Subarray selections: rows 0..m-2 and 1..m-1.
	s1 := es.Submatrix(0, m-1, 0, k)
	s2 := es.Submatrix(1, m, 0, k)

	// Least squares Psi = (S1^H S1)^{-1} S1^H S2.
	a := s1.Herm().Mul(s1)
	b := s1.Herm().Mul(s2)
	psi := cmat.New(k, k)
	// Solve column by column.
	for c := 0; c < k; c++ {
		col, err := cmat.Solve(a, b.Col(c))
		if err != nil {
			return nil, fmt.Errorf("music: ESPRIT normal equations: %w", err)
		}
		for r := 0; r < k; r++ {
			psi.Set(r, c, col[r])
		}
	}

	vals, err := eigenvaluesGeneral(psi)
	if err != nil {
		return nil, err
	}
	out := make([]float64, 0, k)
	for _, z := range vals {
		ph := cmplx.Phase(z)
		x := ph / (2 * math.Pi * spacingWl)
		if x > 1 {
			x = 1
		}
		if x < -1 {
			x = -1
		}
		out = append(out, axisDeg+math.Acos(x)*180/math.Pi)
	}
	return out, nil
}

// Pseudospectrum implements Estimator by placing narrow peaks at the
// ESPRIT DOAs (the DOAs method is the primary interface).
func (e *ESPRIT) Pseudospectrum(cov *cmat.Matrix, arr *antenna.Array, gridDeg []float64) (*Pseudospectrum, error) {
	doas, err := e.DOAs(cov, arr)
	if err != nil {
		return nil, err
	}
	ps := &Pseudospectrum{AnglesDeg: append([]float64(nil), gridDeg...), P: make([]float64, len(gridDeg))}
	const sigma = 1.0
	for rank, d := range doas {
		h := 1.0 / float64(rank+1)
		for i, g := range gridDeg {
			diff := angularSep(g, d)
			ps.P[i] += h * math.Exp(-diff*diff/(2*sigma*sigma))
		}
	}
	return ps, nil
}

// eigenvaluesGeneral computes the eigenvalues of a small general complex
// matrix via its characteristic polynomial: the Faddeev-LeVerrier
// recursion produces the coefficients, and the Durand-Kerner root finder
// factors them. Adequate and stable for the k <= 7 rotation operators
// ESPRIT produces.
func eigenvaluesGeneral(a *cmat.Matrix) ([]complex128, error) {
	n := a.Rows
	if n != a.Cols {
		return nil, fmt.Errorf("music: eigenvalues of non-square %dx%d", n, a.Cols)
	}
	if n == 1 {
		return []complex128{a.At(0, 0)}, nil
	}
	// Faddeev-LeVerrier: M_1 = A, c_1 = -tr(M_1);
	// M_j = A (M_{j-1} + c_{j-1} I), c_j = -tr(M_j)/j.
	// charpoly: lambda^n + c_1 lambda^{n-1} + ... + c_n.
	c := make([]complex128, n+1)
	c[0] = 1
	m := a.Clone()
	for j := 1; j <= n; j++ {
		if j > 1 {
			prev := m.Clone()
			for i := 0; i < n; i++ {
				prev.Set(i, i, prev.At(i, i)+c[j-1])
			}
			m = a.Mul(prev)
		}
		c[j] = -m.Trace() / complex(float64(j), 0)
	}
	// polyRoots wants ascending coefficients: p(z) = sum coeffs[i] z^i.
	coeffs := make([]complex128, n+1)
	for i := 0; i <= n; i++ {
		coeffs[i] = c[n-i]
	}
	return polyRoots(coeffs)
}
