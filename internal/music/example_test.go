package music_test

import (
	"fmt"

	"secureangle/internal/antenna"
	"secureangle/internal/music"
	"secureangle/internal/rng"
)

// ExampleMUSIC shows the core SecureAngle computation: a covariance from
// per-antenna samples, eigendecomposed into a pseudospectrum whose peak
// is the transmitter's bearing.
func ExampleMUSIC() {
	arr := antenna.NewUCA(8, 0.047, antenna.DefaultCarrierHz)
	src := rng.New(1)

	// Synthesise a plane wave from 135 degrees with light noise.
	steer := arr.Steering(135)
	streams := make([][]complex128, arr.N())
	for a := range streams {
		streams[a] = make([]complex128, 400)
	}
	for t := 0; t < 400; t++ {
		sym := src.ComplexGaussian(1)
		for a := range streams {
			streams[a][t] = sym * steer[a]
		}
	}
	for a := range streams {
		src.AddAWGN(streams[a], 0.01)
	}

	r, _ := music.Covariance(streams)
	est := &music.MUSIC{Sources: 1}
	ps, _ := est.Pseudospectrum(r, arr, arr.ScanGrid(1))
	fmt.Printf("bearing: %.0f degrees\n", ps.PeakBearing())
	// Output:
	// bearing: 135 degrees
}

// ExampleRootMUSIC demonstrates grid-free estimation on a uniform linear
// array.
func ExampleRootMUSIC() {
	arr := antenna.NewHalfWaveULA(8, antenna.DefaultCarrierHz)
	src := rng.New(2)

	steer := arr.Steering(70)
	streams := make([][]complex128, arr.N())
	for a := range streams {
		streams[a] = make([]complex128, 500)
	}
	for t := 0; t < 500; t++ {
		sym := src.ComplexGaussian(1)
		for a := range streams {
			streams[a][t] = sym * steer[a]
		}
	}
	for a := range streams {
		src.AddAWGN(streams[a], 0.01)
	}

	r, _ := music.Covariance(streams)
	est := &music.RootMUSIC{Sources: 1}
	doas, _ := est.DOAs(r, arr)
	fmt.Printf("grid-free bearing: %.1f degrees\n", doas[0])
	// Output:
	// grid-free bearing: 70.0 degrees
}
