package music

import (
	"math"
	"math/cmplx"
	"sort"
	"testing"

	"secureangle/internal/antenna"
	"secureangle/internal/cmat"
)

func TestPolyRootsQuadratic(t *testing.T) {
	// z^2 - 3z + 2 = (z-1)(z-2).
	roots, err := polyRoots([]complex128{2, -3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 2 {
		t.Fatalf("roots = %v", roots)
	}
	sort.Slice(roots, func(a, b int) bool { return real(roots[a]) < real(roots[b]) })
	if cmplx.Abs(roots[0]-1) > 1e-9 || cmplx.Abs(roots[1]-2) > 1e-9 {
		t.Errorf("roots = %v, want 1, 2", roots)
	}
}

func TestPolyRootsComplexAndZero(t *testing.T) {
	// z(z^2 + 1) = roots 0, i, -i.
	roots, err := polyRoots([]complex128{0, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 3 {
		t.Fatalf("roots = %v", roots)
	}
	var zero, plusI, minusI bool
	for _, r := range roots {
		switch {
		case cmplx.Abs(r) < 1e-9:
			zero = true
		case cmplx.Abs(r-1i) < 1e-8:
			plusI = true
		case cmplx.Abs(r+1i) < 1e-8:
			minusI = true
		}
	}
	if !zero || !plusI || !minusI {
		t.Errorf("roots = %v", roots)
	}
}

func TestPolyRootsReconstructProperty(t *testing.T) {
	// Roots of a random-coefficient polynomial must satisfy p(r) ~ 0.
	for seed := int64(0); seed < 10; seed++ {
		coeffs := []complex128{
			complex(float64(seed)+1, 2), complex(3, -1), complex(-2, 0.5), complex(1, 0),
		}
		roots, err := polyRoots(coeffs)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range roots {
			var v complex128
			for i := len(coeffs) - 1; i >= 0; i-- {
				v = v*r + coeffs[i]
			}
			if cmplx.Abs(v) > 1e-6 {
				t.Errorf("seed %d: |p(root)| = %v", seed, cmplx.Abs(v))
			}
		}
	}
}

func TestPolyRootsDegenerate(t *testing.T) {
	if _, err := polyRoots([]complex128{5}); err == nil {
		t.Error("constant polynomial accepted")
	}
	if _, err := polyRoots(nil); err == nil {
		t.Error("empty polynomial accepted")
	}
}

func TestRootMUSICSingleSource(t *testing.T) {
	arr := antenna.NewHalfWaveULA(8, antenna.DefaultCarrierHz)
	for _, bearing := range []float64{30, 75, 90, 140} {
		streams := synthStreams(arr, []float64{bearing}, []float64{1}, 25, 500, 20)
		r := cov(t, streams)
		est := &RootMUSIC{Sources: 1}
		doas, err := est.DOAs(r, arr)
		if err != nil {
			t.Fatal(err)
		}
		if len(doas) != 1 {
			t.Fatalf("bearing %v: DOAs = %v", bearing, doas)
		}
		if math.Abs(doas[0]-bearing) > 1 {
			t.Errorf("bearing %v: root-MUSIC gives %v", bearing, doas[0])
		}
	}
}

func TestRootMUSICTwoSources(t *testing.T) {
	arr := antenna.NewHalfWaveULA(8, antenna.DefaultCarrierHz)
	streams := synthStreams(arr, []float64{60, 120}, []float64{1, 0.8}, 25, 800, 21)
	est := &RootMUSIC{Sources: 2}
	doas, err := est.DOAs(cov(t, streams), arr)
	if err != nil {
		t.Fatal(err)
	}
	if len(doas) != 2 {
		t.Fatalf("DOAs = %v", doas)
	}
	sort.Float64s(doas)
	if math.Abs(doas[0]-60) > 2 || math.Abs(doas[1]-120) > 2 {
		t.Errorf("DOAs = %v, want ~[60 120]", doas)
	}
}

func TestRootMUSICGridFreePrecision(t *testing.T) {
	// An off-grid bearing: root-MUSIC should beat a 1-degree scan.
	arr := antenna.NewHalfWaveULA(8, antenna.DefaultCarrierHz)
	const truth = 73.37
	streams := synthStreams(arr, []float64{truth}, []float64{1}, 30, 1000, 22)
	r := cov(t, streams)

	root := &RootMUSIC{Sources: 1}
	doas, err := root.DOAs(r, arr)
	if err != nil {
		t.Fatal(err)
	}
	rootErr := math.Abs(doas[0] - truth)

	grid := &MUSIC{Sources: 1}
	ps, err := grid.Pseudospectrum(r, arr, arr.ScanGrid(1))
	if err != nil {
		t.Fatal(err)
	}
	gridErr := math.Abs(ps.PeakBearing() - truth)

	if rootErr > 0.3 {
		t.Errorf("root-MUSIC error %v deg", rootErr)
	}
	if rootErr > gridErr+1e-9 {
		t.Errorf("root-MUSIC (%v) no better than 1-degree grid (%v)", rootErr, gridErr)
	}
}

func TestRootMUSICRotatedArray(t *testing.T) {
	arr := antenna.NewHalfWaveULA(8, antenna.DefaultCarrierHz).Rotate(-94)
	const truth = 10.0 // inside the rotated half-plane (-94..86)
	streams := synthStreams(arr, []float64{truth}, []float64{1}, 25, 600, 23)
	est := &RootMUSIC{Sources: 1}
	doas, err := est.DOAs(cov(t, streams), arr)
	if err != nil {
		t.Fatal(err)
	}
	if len(doas) != 1 || math.Abs(doas[0]-truth) > 1 {
		t.Errorf("rotated array DOAs = %v, want ~10", doas)
	}
}

func TestRootMUSICRejectsNonULA(t *testing.T) {
	uca := antenna.NewUCA(8, 0.047, antenna.DefaultCarrierHz)
	est := &RootMUSIC{Sources: 1}
	if _, err := est.DOAs(cmat.Identity(8), uca); err != ErrNotULA {
		t.Errorf("err = %v, want ErrNotULA", err)
	}
}

func TestRootMUSICAutoSources(t *testing.T) {
	arr := antenna.NewHalfWaveULA(8, antenna.DefaultCarrierHz)
	streams := synthStreams(arr, []float64{50, 130}, []float64{1, 1}, 25, 1000, 24)
	est := &RootMUSIC{Sources: 0, Samples: 1000}
	doas, err := est.DOAs(cov(t, streams), arr)
	if err != nil {
		t.Fatal(err)
	}
	if len(doas) != 2 {
		t.Errorf("MDL-driven DOAs = %v", doas)
	}
}

func TestRootMUSICPseudospectrum(t *testing.T) {
	arr := antenna.NewHalfWaveULA(8, antenna.DefaultCarrierHz)
	streams := synthStreams(arr, []float64{85}, []float64{1}, 25, 500, 25)
	est := &RootMUSIC{Sources: 1}
	ps, err := est.Pseudospectrum(cov(t, streams), arr, arr.ScanGrid(1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ps.PeakBearing()-85) > 1.5 {
		t.Errorf("pseudospectrum peak %v", ps.PeakBearing())
	}
	if est.Name() != "root-MUSIC" {
		t.Error("name")
	}
}

func BenchmarkRootMUSIC(b *testing.B) {
	arr := antenna.NewHalfWaveULA(8, antenna.DefaultCarrierHz)
	streams := synthStreams(arr, []float64{60, 120}, []float64{1, 0.8}, 25, 800, 26)
	r, err := Covariance(streams)
	if err != nil {
		b.Fatal(err)
	}
	est := &RootMUSIC{Sources: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.DOAs(r, arr); err != nil {
			b.Fatal(err)
		}
	}
}
