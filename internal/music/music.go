// Package music implements the eigenstructure angle-of-arrival estimation
// at the heart of SecureAngle: packet-scale antenna correlation matrices,
// the MUSIC pseudospectrum (Schmidt 1986, reference [12] of the paper),
// Bartlett and Capon/MVDR baselines, forward-backward averaging and
// spatial smoothing for coherent multipath, and MDL/AIC source counting.
//
// The pseudospectrum — likelihood of received energy versus bearing — is
// both the bearing estimator (its highest peak is the direct path most of
// the time, section 3.1) and, sampled on a fixed grid, the client
// signature itself (section 2.1).
package music

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"sort"

	"secureangle/internal/antenna"
	"secureangle/internal/cmat"
	"secureangle/internal/dsp"
)

// Covariance estimates the m x m antenna correlation matrix from
// per-antenna sample streams: R[l][m] = mean over the packet of
// x_l[t] * conj(x_m[t]) — "computing the correlation matrix to obtain mean
// phase differences with each entire packet" (section 3). All streams must
// share a length.
func Covariance(streams [][]complex128) (*cmat.Matrix, error) {
	m := len(streams)
	if m == 0 {
		return nil, errors.New("music: no streams")
	}
	n := len(streams[0])
	if n == 0 {
		return nil, errors.New("music: empty streams")
	}
	for _, s := range streams {
		if len(s) != n {
			return nil, errors.New("music: stream lengths differ")
		}
	}
	r := cmat.New(m, m)
	x := make([]complex128, m)
	for t := 0; t < n; t++ {
		for a := 0; a < m; a++ {
			x[a] = streams[a][t]
		}
		r.AccumulateOuter(x, x)
	}
	r.ScaleInPlace(complex(1/float64(n), 0))
	r.Hermitize()
	return r, nil
}

// CovarianceInto is Covariance computing into r, reshaping its backing
// storage only when too small — the allocation-free variant for the
// per-packet hot path. It accumulates pair-major over the Hermitian
// upper triangle (m(m+1)/2 inner products instead of m^2), mirroring
// the lower triangle by conjugation, so it is also ~40% cheaper than
// the sample-major outer-product form. Returns r.
func CovarianceInto(r *cmat.Matrix, streams [][]complex128) (*cmat.Matrix, error) {
	m := len(streams)
	if m == 0 {
		return nil, errors.New("music: no streams")
	}
	n := len(streams[0])
	if n == 0 {
		return nil, errors.New("music: empty streams")
	}
	for _, s := range streams {
		if len(s) != n {
			return nil, errors.New("music: stream lengths differ")
		}
	}
	if cap(r.Data) < m*m {
		r.Data = make([]complex128, m*m)
	}
	r.Rows, r.Cols = m, m
	r.Data = r.Data[:m*m]
	inv := 1 / float64(n)
	for i := 0; i < m; i++ {
		si := streams[i]
		for j := i; j < m; j++ {
			sj := streams[j]
			var re, im float64
			for t := 0; t < n; t++ {
				a, b := si[t], sj[t]
				// a * conj(b)
				re += real(a)*real(b) + imag(a)*imag(b)
				im += imag(a)*real(b) - real(a)*imag(b)
			}
			re *= inv
			im *= inv
			if i == j {
				r.Data[i*m+i] = complex(re, 0)
				continue
			}
			r.Data[i*m+j] = complex(re, im)
			r.Data[j*m+i] = complex(re, -im)
		}
	}
	return r, nil
}

// ForwardBackward applies forward-backward averaging,
// R_fb = (R + J conj(R) J) / 2 with J the exchange matrix — a standard
// decorrelation step for coherent multipath on centro-symmetric arrays
// (the ULA qualifies).
func ForwardBackward(r *cmat.Matrix) *cmat.Matrix {
	m := r.Rows
	out := cmat.New(m, m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			fw := r.At(i, j)
			bw := cmplx.Conj(r.At(m-1-i, m-1-j))
			out.Set(i, j, (fw+bw)/2)
		}
	}
	out.Hermitize()
	return out
}

// SpatialSmooth averages the covariances of all contiguous subarrays of
// size sub (forward smoothing), restoring rank under coherent multipath at
// the cost of effective aperture. Only meaningful for uniform linear
// arrays, whose subarrays share steering structure.
func SpatialSmooth(r *cmat.Matrix, sub int) (*cmat.Matrix, error) {
	m := r.Rows
	if sub < 2 || sub > m {
		return nil, fmt.Errorf("music: subarray size %d out of range [2, %d]", sub, m)
	}
	nSub := m - sub + 1
	out := cmat.New(sub, sub)
	for s := 0; s < nSub; s++ {
		out.AddInPlace(r.Submatrix(s, s+sub, s, s+sub))
	}
	out.ScaleInPlace(complex(1/float64(nSub), 0))
	out.Hermitize()
	return out, nil
}

// Pseudospectrum is a likelihood-versus-bearing curve on a fixed grid.
type Pseudospectrum struct {
	// AnglesDeg is the bearing grid (global degrees).
	AnglesDeg []float64
	// P is the linear (not dB) pseudospectrum value per grid point.
	P []float64
}

// PeakBearing returns the bearing of the global maximum — the paper's
// bearing estimate ("the angle corresponding to the maximum point on its
// pseudospectrum", section 3.1).
func (ps *Pseudospectrum) PeakBearing() float64 {
	best, bi := math.Inf(-1), 0
	for i, v := range ps.P {
		if v > best {
			best, bi = v, i
		}
	}
	return ps.AnglesDeg[bi]
}

// Peak describes one local maximum of the pseudospectrum.
type Peak struct {
	BearingDeg float64
	Value      float64 // linear
	RelDB      float64 // dB relative to the strongest peak
}

// Peaks returns local maxima at least minSepDeg apart and within floorDB
// of the strongest, sorted by descending value. Grid endpoints count as
// peaks when they dominate their single neighbour (a direct path at the
// scan edge must not vanish).
func (ps *Pseudospectrum) Peaks(minSepDeg, floorDB float64) []Peak {
	n := len(ps.P)
	if n == 0 {
		return nil
	}
	var cands []Peak
	for i := 0; i < n; i++ {
		v := ps.P[i]
		left := math.Inf(-1)
		right := math.Inf(-1)
		if i > 0 {
			left = ps.P[i-1]
		}
		if i < n-1 {
			right = ps.P[i+1]
		}
		if v >= left && v > right || v > left && v >= right {
			cands = append(cands, Peak{BearingDeg: ps.AnglesDeg[i], Value: v})
		}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].Value > cands[b].Value })
	var out []Peak
	for _, c := range cands {
		tooClose := false
		for _, kept := range out {
			if angularSep(kept.BearingDeg, c.BearingDeg) < minSepDeg {
				tooClose = true
				break
			}
		}
		if tooClose {
			continue
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return nil
	}
	top := out[0].Value
	kept := out[:0]
	for _, p := range out {
		p.RelDB = dsp.DB(p.Value / top)
		if p.RelDB >= -floorDB {
			kept = append(kept, p)
		}
	}
	return kept
}

func angularSep(a, b float64) float64 {
	d := math.Mod(math.Abs(a-b), 360)
	if d > 180 {
		d = 360 - d
	}
	return d
}

// NormalizedDB returns the pseudospectrum in dB relative to its maximum
// (the form Figures 6 and 7 plot).
func (ps *Pseudospectrum) NormalizedDB() []float64 {
	peak := math.Inf(-1)
	for _, v := range ps.P {
		peak = math.Max(peak, v)
	}
	out := make([]float64, len(ps.P))
	for i, v := range ps.P {
		if peak <= 0 {
			out[i] = -300
			continue
		}
		out[i] = dsp.DB(v / peak)
	}
	return out
}

// Estimator computes a pseudospectrum from a covariance matrix for a given
// array and scan grid.
type Estimator interface {
	// Name identifies the estimator in experiment output.
	Name() string
	// Pseudospectrum evaluates likelihood over the grid.
	Pseudospectrum(r *cmat.Matrix, arr *antenna.Array, gridDeg []float64) (*Pseudospectrum, error)
}

// MUSIC is the eigenstructure estimator. Sources fixes the signal-subspace
// dimension; if zero, the MDL criterion chooses it per covariance (using
// Samples as the observation count).
type MUSIC struct {
	Sources int
	// Samples is the number of snapshots behind the covariance, needed by
	// MDL/AIC when Sources == 0. Defaults to 1000 if unset.
	Samples int
}

// Name implements Estimator.
func (m *MUSIC) Name() string { return "MUSIC" }

// Pseudospectrum implements Estimator: P(theta) =
// 1 / || En^H a(theta) ||^2, with En the noise subspace. It adapts the
// grid signature onto the manifold fast path by evaluating a one-shot
// manifold for the given grid; callers scanning the same grid repeatedly
// should precompute an antenna.Manifold and use PseudospectrumOnManifold.
func (m *MUSIC) Pseudospectrum(r *cmat.Matrix, arr *antenna.Array, gridDeg []float64) (*Pseudospectrum, error) {
	if r.Rows != arr.N() {
		return nil, fmt.Errorf("music: covariance is %dx%d but array has %d elements", r.Rows, r.Cols, arr.N())
	}
	return m.PseudospectrumOnManifold(r, antenna.NewManifold(arr, gridDeg), 0)
}

// Bartlett is the classical delay-and-sum beamformer baseline:
// P(theta) = a^H R a / (a^H a).
type Bartlett struct{}

// Name implements Estimator.
func (Bartlett) Name() string { return "Bartlett" }

// Pseudospectrum implements Estimator by adapting the grid signature onto
// the manifold fast path.
func (b Bartlett) Pseudospectrum(r *cmat.Matrix, arr *antenna.Array, gridDeg []float64) (*Pseudospectrum, error) {
	if r.Rows != arr.N() {
		return nil, fmt.Errorf("music: covariance is %dx%d but array has %d elements", r.Rows, r.Cols, arr.N())
	}
	return b.PseudospectrumOnManifold(r, antenna.NewManifold(arr, gridDeg), 0)
}

// MVDR is the Capon minimum-variance beamformer baseline:
// P(theta) = 1 / (a^H R^-1 a). DiagonalLoad stabilises the inverse for
// nearly-singular packet covariances (fraction of the mean eigenvalue).
type MVDR struct {
	DiagonalLoad float64
}

// Name implements Estimator.
func (MVDR) Name() string { return "MVDR" }

// Pseudospectrum implements Estimator by adapting the grid signature onto
// the manifold fast path.
func (mv MVDR) Pseudospectrum(r *cmat.Matrix, arr *antenna.Array, gridDeg []float64) (*Pseudospectrum, error) {
	if r.Rows != arr.N() {
		return nil, fmt.Errorf("music: covariance is %dx%d but array has %d elements", r.Rows, r.Cols, arr.N())
	}
	return mv.PseudospectrumOnManifold(r, antenna.NewManifold(arr, gridDeg), 0)
}

// MDLSources estimates the number of sources from sorted-descending
// eigenvalues and snapshot count n using the minimum description length
// criterion (Wax & Kailath).
func MDLSources(eigvals []float64, n int) int {
	m := len(eigvals)
	if m < 2 {
		return 1
	}
	best, bestK := math.Inf(1), 1
	for k := 0; k < m; k++ {
		c := infoCriterion(eigvals, n, k)
		pen := 0.5 * float64(k*(2*m-k)) * math.Log(float64(n))
		if v := c + pen; v < best {
			best, bestK = v, k
		}
	}
	if bestK < 1 {
		bestK = 1
	}
	return bestK
}

// AICSources is the Akaike variant (penalty k(2m-k)).
func AICSources(eigvals []float64, n int) int {
	m := len(eigvals)
	if m < 2 {
		return 1
	}
	best, bestK := math.Inf(1), 1
	for k := 0; k < m; k++ {
		c := infoCriterion(eigvals, n, k)
		pen := float64(k * (2*m - k))
		if v := c + pen; v < best {
			best, bestK = v, k
		}
	}
	if bestK < 1 {
		bestK = 1
	}
	return bestK
}

// infoCriterion computes -n(m-k) log( geoMean / arithMean ) of the m-k
// smallest eigenvalues.
func infoCriterion(eigvals []float64, n, k int) float64 {
	m := len(eigvals)
	tail := eigvals[k:]
	var logSum, sum float64
	for _, v := range tail {
		v = math.Max(v, 1e-18)
		logSum += math.Log(v)
		sum += v
	}
	cnt := float64(m - k)
	geo := logSum / cnt
	arith := math.Log(sum / cnt)
	return -float64(n) * cnt * (geo - arith)
}
