package music

import (
	"math"
	"testing"

	"secureangle/internal/antenna"
	"secureangle/internal/cmat"
	"secureangle/internal/rng"
)

// twoSourceCovariance builds a packet-like covariance with sources at the
// given bearings plus noise, from nSamp snapshots.
func twoSourceCovariance(t testing.TB, arr *antenna.Array, b1, b2 float64, nSamp int, seed int64) *cmat.Matrix {
	t.Helper()
	src := rng.New(seed)
	s1 := arr.Steering(b1)
	s2 := arr.Steering(b2)
	n := arr.N()
	streams := make([][]complex128, n)
	for a := range streams {
		streams[a] = make([]complex128, nSamp)
	}
	for ts := 0; ts < nSamp; ts++ {
		g1 := src.ComplexGaussian(1)
		g2 := src.ComplexGaussian(1)
		for a := 0; a < n; a++ {
			streams[a][ts] = g1*s1[a] + g2*s2[a]
		}
	}
	for a := 0; a < n; a++ {
		src.AddAWGN(streams[a], 0.01)
	}
	r, err := Covariance(streams)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestManifoldPathMatchesGridPath asserts that every estimator's manifold
// fast path reproduces the grid-signature adapter exactly.
func TestManifoldPathMatchesGridPath(t *testing.T) {
	arr := antenna.NewUCA(8, 0.047, antenna.DefaultCarrierHz)
	grid := arr.ScanGrid(1)
	mf := antenna.NewManifold(arr, grid)
	r := twoSourceCovariance(t, arr, 40, 200, 400, 7)

	ests := []ManifoldEstimator{
		&MUSIC{Sources: 2},
		&MUSIC{Samples: 400},
		Bartlett{},
		MVDR{},
	}
	for _, est := range ests {
		viaGrid, err := est.Pseudospectrum(r, arr, grid)
		if err != nil {
			t.Fatalf("%s grid path: %v", est.Name(), err)
		}
		viaManifold, err := est.PseudospectrumOnManifold(r, mf, 400)
		if err != nil {
			t.Fatalf("%s manifold path: %v", est.Name(), err)
		}
		if len(viaGrid.P) != len(viaManifold.P) {
			t.Fatalf("%s: length mismatch %d vs %d", est.Name(), len(viaGrid.P), len(viaManifold.P))
		}
		for i := range viaGrid.P {
			rel := math.Abs(viaGrid.P[i]-viaManifold.P[i]) / math.Max(viaGrid.P[i], 1e-300)
			if rel > 1e-9 {
				t.Fatalf("%s: P[%d] grid %v vs manifold %v", est.Name(), i, viaGrid.P[i], viaManifold.P[i])
			}
			if viaGrid.AnglesDeg[i] != viaManifold.AnglesDeg[i] {
				t.Fatalf("%s: angle[%d] mismatch", est.Name(), i)
			}
		}
	}
}

// TestManifoldSnapshotPlumbing asserts that the manifold path's MDL model
// order follows the snapshot count handed down by the pipeline rather
// than the 1000-sample default.
func TestManifoldSnapshotPlumbing(t *testing.T) {
	arr := antenna.NewUCA(8, 0.047, antenna.DefaultCarrierHz)
	mf := antenna.NewManifoldForScan(arr, 1)
	const nSamp = 150
	r := twoSourceCovariance(t, arr, 60, 230, nSamp, 3)
	eig, err := cmat.HermEig(r)
	if err != nil {
		t.Fatal(err)
	}

	m := &MUSIC{}
	_, k, err := m.PseudospectrumFromEig(eig, mf, nSamp)
	if err != nil {
		t.Fatal(err)
	}
	if want := MDLSources(eig.Values, nSamp); k != want {
		t.Fatalf("snapshots=%d: k = %d, want MDL's %d", nSamp, k, want)
	}

	// With no snapshot count the estimator's own Samples field governs,
	// then the historical 1000 default.
	m2 := &MUSIC{Samples: 25}
	_, k2, err := m2.PseudospectrumFromEig(eig, mf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := MDLSources(eig.Values, 25); k2 != want {
		t.Fatalf("Samples=25 fallback: k = %d, want %d", k2, want)
	}
	_, k3, err := (&MUSIC{}).PseudospectrumFromEig(eig, mf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := MDLSources(eig.Values, 1000); k3 != want {
		t.Fatalf("default fallback: k = %d, want %d", k3, want)
	}

	// Explicit Sources overrides any snapshot count.
	_, k4, err := (&MUSIC{Sources: 3}).PseudospectrumFromEig(eig, mf, nSamp)
	if err != nil {
		t.Fatal(err)
	}
	if k4 != 3 {
		t.Fatalf("Sources=3: k = %d", k4)
	}
}

func TestManifoldShapeMismatch(t *testing.T) {
	arr := antenna.NewUCA(8, 0.047, antenna.DefaultCarrierHz)
	small := antenna.NewHalfWaveULA(4, antenna.DefaultCarrierHz)
	mf := antenna.NewManifoldForScan(small, 1)
	r := twoSourceCovariance(t, arr, 40, 200, 100, 1)
	for _, est := range []ManifoldEstimator{&MUSIC{Sources: 1}, Bartlett{}, MVDR{}} {
		if _, err := est.PseudospectrumOnManifold(r, mf, 100); err == nil {
			t.Fatalf("%s: no error for 8x8 covariance on 4-element manifold", est.Name())
		}
	}
}

// BenchmarkMUSICScanManifold measures the per-packet MUSIC scan with the
// steering manifold precomputed once, against BenchmarkMUSICScanRecompute
// where every call rebuilds the steering vectors (the pre-refactor
// behaviour of the grid-signature path).
func BenchmarkMUSICScanManifold(b *testing.B) {
	arr := antenna.NewUCA(8, 0.047, antenna.DefaultCarrierHz)
	mf := antenna.NewManifoldForScan(arr, 1)
	r := twoSourceCovariance(b, arr, 40, 200, 400, 7)
	est := &MUSIC{Sources: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.PseudospectrumOnManifold(r, mf, 400); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMUSICScanRecompute(b *testing.B) {
	arr := antenna.NewUCA(8, 0.047, antenna.DefaultCarrierHz)
	grid := arr.ScanGrid(1)
	r := twoSourceCovariance(b, arr, 40, 200, 400, 7)
	est := &MUSIC{Sources: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.Pseudospectrum(r, arr, grid); err != nil {
			b.Fatal(err)
		}
	}
}
