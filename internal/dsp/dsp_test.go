package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func randSignal(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func maxErr(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if e := cmplx.Abs(a[i] - b[i]); e > m {
			m = e
		}
	}
	return m
}

func TestFFTEmptyAndSingle(t *testing.T) {
	if FFT(nil) != nil {
		t.Error("FFT(nil) != nil")
	}
	x := []complex128{3 + 4i}
	if got := FFT(x); len(got) != 1 || got[0] != 3+4i {
		t.Errorf("FFT single = %v", got)
	}
}

func TestFFTKnownDC(t *testing.T) {
	x := []complex128{1, 1, 1, 1}
	f := FFT(x)
	if cmplx.Abs(f[0]-4) > 1e-12 {
		t.Errorf("DC bin = %v, want 4", f[0])
	}
	for k := 1; k < 4; k++ {
		if cmplx.Abs(f[k]) > 1e-12 {
			t.Errorf("bin %d = %v, want 0", k, f[k])
		}
	}
}

func TestFFTKnownTone(t *testing.T) {
	// x[n] = exp(2 pi i n k0 / N) puts all energy into bin k0.
	const n, k0 = 16, 3
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Rect(1, 2*math.Pi*float64(k0*i)/float64(n))
	}
	f := FFT(x)
	for k := range f {
		want := 0.0
		if k == k0 {
			want = n
		}
		if math.Abs(cmplx.Abs(f[k])-want) > 1e-9 {
			t.Errorf("bin %d magnitude = %v, want %v", k, cmplx.Abs(f[k]), want)
		}
	}
}

func TestFFTRoundTripPow2(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 4, 8, 64, 256, 1024} {
		x := randSignal(rng, n)
		if e := maxErr(IFFT(FFT(x)), x); e > 1e-10 {
			t.Errorf("n=%d round-trip err %v", n, e)
		}
	}
}

func TestFFTRoundTripArbitraryN(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{3, 5, 6, 7, 12, 17, 60, 100, 241} {
		x := randSignal(rng, n)
		if e := maxErr(IFFT(FFT(x)), x); e > 1e-9 {
			t.Errorf("n=%d round-trip err %v", n, e)
		}
	}
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{8, 13} {
		x := randSignal(rng, n)
		want := make([]complex128, n)
		for k := 0; k < n; k++ {
			for m := 0; m < n; m++ {
				want[k] += x[m] * cmplx.Rect(1, -2*math.Pi*float64(k*m)/float64(n))
			}
		}
		if e := maxErr(FFT(x), want); e > 1e-9 {
			t.Errorf("n=%d FFT vs naive DFT err %v", n, e)
		}
	}
}

func TestFFTLinearityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		n := 1 << (1 + r.Intn(6))
		x, y := randSignal(r, n), randSignal(r, n)
		a := complex(r.NormFloat64(), r.NormFloat64())
		sum := make([]complex128, n)
		for i := range sum {
			sum[i] = a*x[i] + y[i]
		}
		fx, fy, fs := FFT(x), FFT(y), FFT(sum)
		for i := range fs {
			if cmplx.Abs(fs[i]-(a*fx[i]+fy[i])) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestParsevalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		n := 2 + r.Intn(100)
		x := randSignal(r, n)
		te := Energy(x)
		fe := Energy(FFT(x)) / float64(n)
		return math.Abs(te-fe) < 1e-8*(1+te)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestFFTShift(t *testing.T) {
	x := []complex128{0, 1, 2, 3}
	got := FFTShift(x)
	want := []complex128{2, 3, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FFTShift = %v, want %v", got, want)
		}
	}
	odd := FFTShift([]complex128{0, 1, 2, 3, 4})
	wantOdd := []complex128{3, 4, 0, 1, 2}
	for i := range wantOdd {
		if odd[i] != wantOdd[i] {
			t.Fatalf("odd FFTShift = %v, want %v", odd, wantOdd)
		}
	}
}

func TestFFTFreqs(t *testing.T) {
	f := FFTFreqs(4, 20e6)
	want := []float64{0, 5e6, 10e6, -5e6}
	for i := range want {
		if math.Abs(f[i]-want[i]) > 1 {
			t.Fatalf("FFTFreqs = %v, want %v", f, want)
		}
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 5: 8, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestConvolveKnown(t *testing.T) {
	a := []complex128{1, 2}
	b := []complex128{1, 1, 1}
	got := Convolve(a, b)
	want := []complex128{1, 3, 3, 2}
	if len(got) != len(want) {
		t.Fatalf("Convolve len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if cmplx.Abs(got[i]-want[i]) > 1e-10 {
			t.Fatalf("Convolve = %v, want %v", got, want)
		}
	}
}

func TestConvolveImpulseIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := randSignal(rng, 37)
	got := Convolve(x, []complex128{1})
	if e := maxErr(got, x); e > 1e-10 {
		t.Errorf("convolution with impulse changed signal: %v", e)
	}
}

func TestCrossCorrelateFindsTemplate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tmpl := randSignal(rng, 16)
	sig := make([]complex128, 100)
	copy(sig[40:], tmpl)
	c := CrossCorrelate(sig, tmpl)
	best, bestMag := 0, 0.0
	for i, v := range c {
		if m := cmplx.Abs(v); m > bestMag {
			best, bestMag = i, m
		}
	}
	if best != 40 {
		t.Fatalf("correlation peak at %d, want 40", best)
	}
}

func TestAutoCorrelateZeroLagIsEnergy(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x := randSignal(rng, 50)
	r := AutoCorrelate(x, 5)
	if math.Abs(real(r[0])-Energy(x)) > 1e-9 {
		t.Errorf("r[0] = %v, energy %v", r[0], Energy(x))
	}
}

func TestFractionalDelayIntegerShift(t *testing.T) {
	// A one-sample delay at fs must equal a circular shift by one.
	rng := rand.New(rand.NewSource(9))
	const fs = 20e6
	x := randSignal(rng, 64)
	d := FractionalDelay(x, 1/fs, fs)
	for i := range x {
		want := x[(i+63)%64]
		if cmplx.Abs(d[i]-want) > 1e-9 {
			t.Fatalf("sample %d: got %v want %v", i, d[i], want)
		}
	}
}

func TestFractionalDelayToneTheory(t *testing.T) {
	// Delaying a pure tone by tau multiplies it by exp(-2 pi i f tau).
	const fs = 20e6
	const bin = 5
	n := 128
	x := make([]complex128, n)
	f := bin * fs / float64(n)
	for i := range x {
		x[i] = cmplx.Rect(1, 2*math.Pi*f*float64(i)/fs)
	}
	tau := 13.7e-9 // sub-sample
	d := FractionalDelay(x, tau, fs)
	rot := cmplx.Rect(1, -2*math.Pi*f*tau)
	for i := range x {
		if cmplx.Abs(d[i]-x[i]*rot) > 1e-9 {
			t.Fatalf("sample %d: got %v want %v", i, d[i], x[i]*rot)
		}
	}
}

func TestFractionalDelayPreservesEnergyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		n := 16 + r.Intn(100)
		x := randSignal(r, n)
		tau := r.Float64() * 1e-7
		d := FractionalDelay(x, tau, 20e6)
		return math.Abs(Energy(d)-Energy(x)) < 1e-7*(1+Energy(x))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestMixFrequency(t *testing.T) {
	x := []complex128{1, 1, 1, 1}
	y := MixFrequency(x, 5e6, 20e6, 0)
	// 5 MHz at 20 MHz sampling advances pi/2 per sample.
	want := []complex128{1, 1i, -1, -1i}
	for i := range want {
		if cmplx.Abs(y[i]-want[i]) > 1e-12 {
			t.Fatalf("MixFrequency = %v, want %v", y, want)
		}
	}
}

func TestUnwrapPhase(t *testing.T) {
	ph := []float64{0, 2, -2.5, -0.5} // -2.5 after 2 is a wrap: true path 0,2,3.78..
	un := UnwrapPhase(ph)
	if un[2] <= un[1] {
		t.Errorf("unwrap failed: %v", un)
	}
	for i := 1; i < len(un); i++ {
		if math.Abs(un[i]-un[i-1]) > math.Pi {
			t.Errorf("unwrapped jump > pi at %d: %v", i, un)
		}
	}
}

func TestWrapPhase(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0}, {math.Pi / 2, math.Pi / 2}, {3 * math.Pi, math.Pi},
		{-3 * math.Pi, math.Pi}, {2 * math.Pi, 0},
	}
	for _, c := range cases {
		if got := WrapPhase(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("WrapPhase(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestWindows(t *testing.T) {
	for name, w := range map[string][]float64{
		"hamming":  Hamming(64),
		"hann":     Hann(64),
		"blackman": Blackman(64),
	} {
		if len(w) != 64 {
			t.Errorf("%s length %d", name, len(w))
		}
		// Symmetry.
		for i := 0; i < 32; i++ {
			if math.Abs(w[i]-w[63-i]) > 1e-12 {
				t.Errorf("%s asymmetric at %d", name, i)
			}
		}
		// Peak near the middle, bounded by 1.
		for i, v := range w {
			if v > 1+1e-12 || v < -1e-12 {
				t.Errorf("%s out of range at %d: %v", name, i, v)
			}
		}
	}
	if Hann(1)[0] != 1 {
		t.Error("Hann(1) != [1]")
	}
}

func TestMovingSum(t *testing.T) {
	x := []complex128{1, 2, 3, 4}
	got := MovingSum(x, 2)
	want := []complex128{3, 5, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MovingSum = %v, want %v", got, want)
		}
	}
	if MovingSum(x, 0) != nil || MovingSum(x, 5) != nil {
		t.Error("invalid window should yield nil")
	}
	xr := []float64{1, 2, 3, 4}
	gr := MovingSumReal(xr, 3)
	if len(gr) != 2 || gr[0] != 6 || gr[1] != 9 {
		t.Fatalf("MovingSumReal = %v", gr)
	}
}

func TestMovingSumMatchesNaiveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		n := 4 + r.Intn(60)
		w := 1 + r.Intn(n)
		x := randSignal(r, n)
		got := MovingSum(x, w)
		for i := range got {
			var s complex128
			for j := 0; j < w; j++ {
				s += x[i+j]
			}
			if cmplx.Abs(got[i]-s) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDBConversions(t *testing.T) {
	if DB(1) != 0 {
		t.Error("DB(1) != 0")
	}
	if math.Abs(DB(100)-20) > 1e-12 {
		t.Error("DB(100) != 20")
	}
	if DB(0) != -300 {
		t.Error("DB(0) should clamp to -300")
	}
	if math.Abs(FromDB(30)-1000) > 1e-9 {
		t.Error("FromDB(30) != 1000")
	}
}

func TestEnergyPowerScaleAdd(t *testing.T) {
	x := []complex128{3, 4i}
	if Energy(x) != 25 {
		t.Errorf("Energy = %v", Energy(x))
	}
	if Power(x) != 12.5 {
		t.Errorf("Power = %v", Power(x))
	}
	if Power(nil) != 0 {
		t.Error("Power(nil) != 0")
	}
	Scale(x, 2)
	if x[0] != 6 {
		t.Errorf("Scale failed: %v", x)
	}
	dst := []complex128{1, 1}
	AddInto(dst, []complex128{2, 3})
	if dst[0] != 3 || dst[1] != 4 {
		t.Errorf("AddInto = %v", dst)
	}
}

func TestApplyWindow(t *testing.T) {
	x := []complex128{2, 2, 2}
	w := []float64{0.5, 1, 0.5}
	y := ApplyWindow(x, w)
	if y[0] != 1 || y[1] != 2 || y[2] != 1 {
		t.Errorf("ApplyWindow = %v", y)
	}
}

func BenchmarkFFT1024(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	x := randSignal(rng, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}

func BenchmarkFFT64(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	x := randSignal(rng, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}

func BenchmarkFractionalDelay8192(b *testing.B) {
	rng := rand.New(rand.NewSource(14))
	x := randSignal(rng, 8192)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FractionalDelay(x, 13e-9, 20e6)
	}
}
