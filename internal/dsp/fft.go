// Package dsp provides the signal-processing primitives SecureAngle's PHY
// pipeline is built on: FFTs of arbitrary length, convolution and
// correlation, frequency-domain fractional delay, window functions, and
// phase utilities. Everything is stdlib-only and allocation-conscious on
// the hot paths (the per-packet correlation pipeline).
package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
	"sync"
)

// FFT returns the discrete Fourier transform of x. The input is not
// modified. Power-of-two lengths use an iterative radix-2
// decimation-in-time transform; other lengths fall back to Bluestein's
// algorithm. Length 0 returns an empty slice.
func FFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	out := make([]complex128, n)
	copy(out, x)
	fftInPlace(out, false)
	return out
}

// IFFT returns the inverse DFT of x, scaled by 1/N so that IFFT(FFT(x))
// round-trips.
func IFFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	out := make([]complex128, n)
	copy(out, x)
	fftInPlace(out, true)
	scale := complex(1/float64(n), 0)
	for i := range out {
		out[i] *= scale
	}
	return out
}

// FFTInPlace computes the forward DFT of x in place. Non-power-of-two
// lengths are handled transparently (with internal allocation).
func FFTInPlace(x []complex128) { fftInPlace(x, false) }

// IFFTInPlace computes the inverse DFT of x in place, scaled by 1/N so
// that IFFTInPlace(FFTInPlace(x)) round-trips.
func IFFTInPlace(x []complex128) {
	n := len(x)
	if n == 0 {
		return
	}
	fftInPlace(x, true)
	scale := complex(1/float64(n), 0)
	for i := range x {
		x[i] *= scale
	}
}

func fftInPlace(x []complex128, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	if n&(n-1) == 0 {
		radix2(x, inverse)
		return
	}
	bluestein(x, inverse)
}

// maxCachedFFT bounds the transform sizes whose tables are retained. The
// packet pipeline uses a handful of sizes in the low thousands; anything
// larger recomputes twiddles on the fly rather than hold megabytes live.
const maxCachedFFT = 1 << 18

// maxPlanEntries bounds the number of retained per-length plans in each
// cache (radix-2 tables, Bluestein plans). A workload whose transform
// lengths vary without limit — baseband length varies per frame — would
// otherwise accumulate plans forever; on overflow the cache is dropped
// wholesale and rebuilt from the lengths still in use, like the
// channel-response cache in internal/radio.
const maxPlanEntries = 64

// planCache is a bounded per-length cache shared by both plan kinds.
type planCache struct {
	mu sync.RWMutex
	m  map[int]any
}

func (c *planCache) load(n int) (any, bool) {
	c.mu.RLock()
	v, ok := c.m[n]
	c.mu.RUnlock()
	return v, ok
}

// store inserts a plan, evicting everything first when full, and returns
// the winning entry (an earlier concurrent builder may have stored one).
func (c *planCache) store(n int, v any) any {
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.m[n]; ok {
		return prev
	}
	if c.m == nil || len(c.m) >= maxPlanEntries {
		c.m = make(map[int]any)
	}
	c.m[n] = v
	return v
}

// radix2Tables holds the precomputed machinery for one power-of-two size:
// the bit-reversal permutation and the twiddle factors of every stage,
// packed stage after stage (the stage with half-size h starts at h-1).
type radix2Tables struct {
	rev []int32
	fwd []complex128
	inv []complex128
}

var radix2Cache planCache

func tablesFor(n int) *radix2Tables {
	if t, ok := radix2Cache.load(n); ok {
		return t.(*radix2Tables)
	}
	logN := bits.TrailingZeros(uint(n))
	t := &radix2Tables{
		rev: make([]int32, n),
		fwd: make([]complex128, n-1),
		inv: make([]complex128, n-1),
	}
	for i := 0; i < n; i++ {
		t.rev[i] = int32(bits.Reverse(uint(i)) >> (bits.UintSize - logN))
	}
	for half := 1; half < n; half <<= 1 {
		base := half - 1
		for k := 0; k < half; k++ {
			ang := math.Pi * float64(k) / float64(half)
			t.fwd[base+k] = cmplx.Rect(1, -ang)
			t.inv[base+k] = cmplx.Rect(1, ang)
		}
	}
	return radix2Cache.store(n, t).(*radix2Tables)
}

// radix2 is an iterative Cooley-Tukey DIT FFT for power-of-two lengths.
// Cacheable sizes use precomputed bit-reversal and twiddle tables; larger
// sizes fall back to the recurrence form.
func radix2(x []complex128, inverse bool) {
	n := len(x)
	if n <= maxCachedFFT {
		radix2Cached(x, inverse, tablesFor(n))
		return
	}
	logN := bits.TrailingZeros(uint(n))

	// Bit-reversal permutation.
	for i := 0; i < n; i++ {
		j := int(bits.Reverse(uint(i)) >> (bits.UintSize - logN))
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}

	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := sign * 2 * math.Pi / float64(size)
		wBase := cmplx.Rect(1, step)
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wBase
			}
		}
	}
}

func radix2Cached(x []complex128, inverse bool, t *radix2Tables) {
	n := len(x)
	for i, j := range t.rev {
		if int(j) > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	tw := t.fwd
	if inverse {
		tw = t.inv
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		stage := tw[half-1 : 2*half-1]
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * stage[k]
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
}

// bluesteinPlan caches, for one transform length n, the chirp sequence and
// the forward FFTs of the chirp-conjugate convolution kernel for both
// transform directions — everything about Bluestein's algorithm that does
// not depend on the input samples.
type bluesteinPlan struct {
	n, m   int
	chirpF []complex128 // forward chirp exp(-i pi k^2 / n)
	chirpI []complex128 // inverse chirp (conjugate)
	kernF  []complex128 // FFT of conj(chirpF) kernel, length m
	kernI  []complex128 // FFT of conj(chirpI) kernel, length m
	// scratch recycles the length-m convolution buffer across calls; a
	// non-power-of-two transform would otherwise allocate (and zero)
	// m complexes per call — the dominant per-packet garbage before the
	// pooled pipeline.
	scratch sync.Pool
}

func (p *bluesteinPlan) getScratch() []complex128 {
	if b, ok := p.scratch.Get().(*[]complex128); ok {
		return *b // holds stale samples; bluestein overwrites every element
	}
	return make([]complex128, p.m)
}

func (p *bluesteinPlan) putScratch(a []complex128) {
	p.scratch.Put(&a)
}

var bluesteinCache planCache

func planFor(n int) *bluesteinPlan {
	if p, ok := bluesteinCache.load(n); ok {
		return p.(*bluesteinPlan)
	}
	return bluesteinCache.store(n, buildUncachedPlan(n)).(*bluesteinPlan)
}

func bluesteinKernel(chirp []complex128, n, m int) []complex128 {
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		b[k] = cmplx.Conj(chirp[k])
	}
	for k := 1; k < n; k++ {
		b[m-k] = cmplx.Conj(chirp[k])
	}
	radix2(b, false)
	return b
}

// bluestein computes an arbitrary-length DFT as a convolution via a larger
// power-of-two FFT (chirp-z transform). The chirp and the kernel FFT are
// input-independent and come from a per-length cached plan, so each call
// costs two radix-2 transforms instead of three.
func bluestein(x []complex128, inverse bool) {
	n := len(x)
	var p *bluesteinPlan
	if n <= maxCachedFFT {
		p = planFor(n)
	} else {
		p = buildUncachedPlan(n)
	}
	chirp, kern := p.chirpF, p.kernF
	if inverse {
		chirp, kern = p.chirpI, p.kernI
	}
	m := p.m
	a := p.getScratch()
	for k := 0; k < n; k++ {
		a[k] = x[k] * chirp[k]
	}
	for k := n; k < m; k++ {
		a[k] = 0
	}
	radix2(a, false)
	for i := range a {
		a[i] *= kern[i]
	}
	radix2(a, true)
	invM := complex(1/float64(m), 0)
	for k := 0; k < n; k++ {
		x[k] = a[k] * invM * chirp[k]
	}
	p.putScratch(a)
}

func buildUncachedPlan(n int) *bluesteinPlan {
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	p := &bluesteinPlan{n: n, m: m, chirpF: make([]complex128, n), chirpI: make([]complex128, n)}
	for k := 0; k < n; k++ {
		kk := (int64(k) * int64(k)) % int64(2*n)
		ang := math.Pi * float64(kk) / float64(n)
		p.chirpF[k] = cmplx.Rect(1, -ang)
		p.chirpI[k] = cmplx.Rect(1, ang)
	}
	p.kernF = bluesteinKernel(p.chirpF, n, m)
	p.kernI = bluesteinKernel(p.chirpI, n, m)
	return p
}

// FFTShift rotates the zero-frequency bin to the centre (like Matlab's
// fftshift). Returns a new slice.
func FFTShift(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	half := (n + 1) / 2
	copy(out, x[half:])
	copy(out[n-half:], x[:half])
	return out
}

// FFTFreqs returns the frequency of each DFT bin for sample rate fs, in the
// standard order: bins 0..N/2-1 nonnegative, then negative frequencies.
func FFTFreqs(n int, fs float64) []float64 {
	out := make([]float64, n)
	for k := 0; k < n; k++ {
		f := float64(k)
		if k > n/2 {
			f -= float64(n)
		}
		out[k] = f * fs / float64(n)
	}
	return out
}

// NextPow2 returns the smallest power of two >= n (n >= 1).
func NextPow2(n int) int {
	if n < 1 {
		panic(fmt.Sprintf("dsp: NextPow2(%d)", n))
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
