// Package dsp provides the signal-processing primitives SecureAngle's PHY
// pipeline is built on: FFTs of arbitrary length, convolution and
// correlation, frequency-domain fractional delay, window functions, and
// phase utilities. Everything is stdlib-only and allocation-conscious on
// the hot paths (the per-packet correlation pipeline).
package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// FFT returns the discrete Fourier transform of x. The input is not
// modified. Power-of-two lengths use an iterative radix-2
// decimation-in-time transform; other lengths fall back to Bluestein's
// algorithm. Length 0 returns an empty slice.
func FFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	out := make([]complex128, n)
	copy(out, x)
	fftInPlace(out, false)
	return out
}

// IFFT returns the inverse DFT of x, scaled by 1/N so that IFFT(FFT(x))
// round-trips.
func IFFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	out := make([]complex128, n)
	copy(out, x)
	fftInPlace(out, true)
	scale := complex(1/float64(n), 0)
	for i := range out {
		out[i] *= scale
	}
	return out
}

// FFTInPlace computes the forward DFT of x in place. Non-power-of-two
// lengths are handled transparently (with internal allocation).
func FFTInPlace(x []complex128) { fftInPlace(x, false) }

func fftInPlace(x []complex128, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	if n&(n-1) == 0 {
		radix2(x, inverse)
		return
	}
	bluestein(x, inverse)
}

// radix2 is an iterative Cooley-Tukey DIT FFT for power-of-two lengths.
func radix2(x []complex128, inverse bool) {
	n := len(x)
	logN := bits.TrailingZeros(uint(n))

	// Bit-reversal permutation.
	for i := 0; i < n; i++ {
		j := int(bits.Reverse(uint(i)) >> (bits.UintSize - logN))
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}

	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := sign * 2 * math.Pi / float64(size)
		wBase := cmplx.Rect(1, step)
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wBase
			}
		}
	}
}

// bluestein computes an arbitrary-length DFT as a convolution via a larger
// power-of-two FFT (chirp-z transform).
func bluestein(x []complex128, inverse bool) {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Chirp: w[k] = exp(sign * i*pi*k^2/n). k^2 mod 2n keeps the argument
	// bounded for large k.
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		kk := (int64(k) * int64(k)) % int64(2*n)
		chirp[k] = cmplx.Rect(1, sign*math.Pi*float64(kk)/float64(n))
	}

	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * chirp[k]
		b[k] = cmplx.Conj(chirp[k])
	}
	for k := 1; k < n; k++ {
		b[m-k] = cmplx.Conj(chirp[k])
	}
	radix2(a, false)
	radix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	radix2(a, true)
	invM := complex(1/float64(m), 0)
	for k := 0; k < n; k++ {
		x[k] = a[k] * invM * chirp[k]
	}
}

// FFTShift rotates the zero-frequency bin to the centre (like Matlab's
// fftshift). Returns a new slice.
func FFTShift(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	half := (n + 1) / 2
	copy(out, x[half:])
	copy(out[n-half:], x[:half])
	return out
}

// FFTFreqs returns the frequency of each DFT bin for sample rate fs, in the
// standard order: bins 0..N/2-1 nonnegative, then negative frequencies.
func FFTFreqs(n int, fs float64) []float64 {
	out := make([]float64, n)
	for k := 0; k < n; k++ {
		f := float64(k)
		if k > n/2 {
			f -= float64(n)
		}
		out[k] = f * fs / float64(n)
	}
	return out
}

// NextPow2 returns the smallest power of two >= n (n >= 1).
func NextPow2(n int) int {
	if n < 1 {
		panic(fmt.Sprintf("dsp: NextPow2(%d)", n))
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
