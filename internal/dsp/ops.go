package dsp

import (
	"math"
	"math/cmplx"
)

// Convolve returns the full linear convolution of a and b
// (length len(a)+len(b)-1), computed via FFT for efficiency.
func Convolve(a, b []complex128) []complex128 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	n := len(a) + len(b) - 1
	m := NextPow2(n)
	fa := make([]complex128, m)
	fb := make([]complex128, m)
	copy(fa, a)
	copy(fb, b)
	radix2(fa, false)
	radix2(fb, false)
	for i := range fa {
		fa[i] *= fb[i]
	}
	radix2(fa, true)
	out := make([]complex128, n)
	inv := complex(1/float64(m), 0)
	for i := range out {
		out[i] = fa[i] * inv
	}
	return out
}

// CrossCorrelate returns c[k] = sum_n a[n+k] * conj(b[n]) for lags
// k = 0 .. len(a)-len(b); a must be at least as long as b. This is the
// sliding correlation used by preamble matching.
func CrossCorrelate(a, b []complex128) []complex128 {
	if len(b) == 0 || len(a) < len(b) {
		return nil
	}
	out := make([]complex128, len(a)-len(b)+1)
	for k := range out {
		var s complex128
		for n := range b {
			s += a[k+n] * cmplx.Conj(b[n])
		}
		out[k] = s
	}
	return out
}

// AutoCorrelate returns r[k] = sum_n x[n] * conj(x[n-k]) for k = 0..maxLag.
func AutoCorrelate(x []complex128, maxLag int) []complex128 {
	if maxLag >= len(x) {
		maxLag = len(x) - 1
	}
	if maxLag < 0 {
		return nil
	}
	out := make([]complex128, maxLag+1)
	for k := 0; k <= maxLag; k++ {
		var s complex128
		for n := k; n < len(x); n++ {
			s += x[n] * cmplx.Conj(x[n-k])
		}
		out[k] = s
	}
	return out
}

// FractionalDelay returns x delayed by tau seconds at sample rate fs,
// implemented as a linear phase ramp in the frequency domain. The delay may
// be any real value (sub-sample delays included); the signal is treated as
// periodic, which is acceptable for packet-padded buffers. This is how the
// channel simulator realises distinct multipath delays whose differences
// are below the sample period.
func FractionalDelay(x []complex128, tau, fs float64) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	spec := FFT(x)
	freqs := FFTFreqs(n, fs)
	for k := range spec {
		spec[k] *= cmplx.Rect(1, -2*math.Pi*freqs[k]*tau)
	}
	return IFFT(spec)
}

// MixFrequency multiplies x by a complex exponential of frequency f Hz at
// sample rate fs, starting at phase0 radians: the model for carrier
// frequency offset and for downconversion phase.
func MixFrequency(x []complex128, f, fs, phase0 float64) []complex128 {
	out := make([]complex128, len(x))
	MixFrequencyInto(out, x, f, fs, phase0)
	return out
}

// MixFrequencyInto is MixFrequency writing into dst (which must be at
// least as long as x); dst may alias x for an in-place mix. It returns
// dst truncated to len(x).
func MixFrequencyInto(dst, x []complex128, f, fs, phase0 float64) []complex128 {
	step := 2 * math.Pi * f / fs
	for i := range x {
		dst[i] = x[i] * cmplx.Rect(1, phase0+step*float64(i))
	}
	return dst[:len(x)]
}

// Energy returns the total energy sum |x[i]|^2.
func Energy(x []complex128) float64 {
	var s float64
	for _, v := range x {
		s += real(v)*real(v) + imag(v)*imag(v)
	}
	return s
}

// Power returns the mean energy per sample, 0 for empty input.
func Power(x []complex128) float64 {
	if len(x) == 0 {
		return 0
	}
	return Energy(x) / float64(len(x))
}

// Scale multiplies x by g in place.
func Scale(x []complex128, g complex128) {
	for i := range x {
		x[i] *= g
	}
}

// AddInto accumulates src into dst (dst must be at least as long as src).
func AddInto(dst, src []complex128) {
	for i, v := range src {
		dst[i] += v
	}
}

// UnwrapPhase removes 2-pi jumps from a phase sequence.
func UnwrapPhase(ph []float64) []float64 {
	out := make([]float64, len(ph))
	if len(ph) == 0 {
		return out
	}
	out[0] = ph[0]
	for i := 1; i < len(ph); i++ {
		d := ph[i] - ph[i-1]
		for d > math.Pi {
			d -= 2 * math.Pi
		}
		for d < -math.Pi {
			d += 2 * math.Pi
		}
		out[i] = out[i-1] + d
	}
	return out
}

// WrapPhase maps a phase to (-pi, pi].
func WrapPhase(p float64) float64 {
	p = math.Mod(p, 2*math.Pi)
	if p > math.Pi {
		p -= 2 * math.Pi
	} else if p <= -math.Pi {
		p += 2 * math.Pi
	}
	return p
}

// Hamming returns an n-point Hamming window.
func Hamming(n int) []float64 {
	return cosineWindow(n, 0.54, 0.46)
}

// Hann returns an n-point Hann window.
func Hann(n int) []float64 {
	return cosineWindow(n, 0.5, 0.5)
}

// Blackman returns an n-point Blackman window.
func Blackman(n int) []float64 {
	out := make([]float64, n)
	if n == 1 {
		out[0] = 1
		return out
	}
	for i := range out {
		x := 2 * math.Pi * float64(i) / float64(n-1)
		out[i] = 0.42 - 0.5*math.Cos(x) + 0.08*math.Cos(2*x)
	}
	return out
}

func cosineWindow(n int, a, b float64) []float64 {
	out := make([]float64, n)
	if n == 1 {
		out[0] = 1
		return out
	}
	for i := range out {
		out[i] = a - b*math.Cos(2*math.Pi*float64(i)/float64(n-1))
	}
	return out
}

// ApplyWindow multiplies x by w element-wise into a new slice.
func ApplyWindow(x []complex128, w []float64) []complex128 {
	n := min(len(x), len(w))
	out := make([]complex128, n)
	for i := 0; i < n; i++ {
		out[i] = x[i] * complex(w[i], 0)
	}
	return out
}

// MovingSum returns the running sum of x over windows of length w:
// out[i] = sum(x[i:i+w]), length len(x)-w+1. Used by the Schmidl-Cox
// timing metric. Complex accumulation error is negligible at packet scale.
func MovingSum(x []complex128, w int) []complex128 {
	if w <= 0 || w > len(x) {
		return nil
	}
	return MovingSumInto(make([]complex128, len(x)-w+1), x, w)
}

// MovingSumInto is MovingSum writing into dst, which must hold at least
// len(x)-w+1 entries; it returns dst truncated to that length (nil on a
// degenerate window, as MovingSum).
func MovingSumInto(dst, x []complex128, w int) []complex128 {
	if w <= 0 || w > len(x) {
		return nil
	}
	out := dst[:len(x)-w+1]
	var acc complex128
	for i := 0; i < w; i++ {
		acc += x[i]
	}
	out[0] = acc
	for i := 1; i < len(out); i++ {
		acc += x[i+w-1] - x[i-1]
		out[i] = acc
	}
	return out
}

// MovingSumReal is MovingSum for real-valued series.
func MovingSumReal(x []float64, w int) []float64 {
	if w <= 0 || w > len(x) {
		return nil
	}
	return MovingSumRealInto(make([]float64, len(x)-w+1), x, w)
}

// MovingSumRealInto is MovingSumInto for real-valued series.
func MovingSumRealInto(dst, x []float64, w int) []float64 {
	if w <= 0 || w > len(x) {
		return nil
	}
	out := dst[:len(x)-w+1]
	var acc float64
	for i := 0; i < w; i++ {
		acc += x[i]
	}
	out[0] = acc
	for i := 1; i < len(out); i++ {
		acc += x[i+w-1] - x[i-1]
		out[i] = acc
	}
	return out
}

// DB converts a power ratio to decibels; zero or negative input maps to
// -inf dB clamped at -300 to keep plots finite.
func DB(p float64) float64 {
	if p <= 0 {
		return -300
	}
	d := 10 * math.Log10(p)
	if d < -300 {
		return -300
	}
	return d
}

// FromDB converts decibels to a power ratio.
func FromDB(db float64) float64 { return math.Pow(10, db/10) }
