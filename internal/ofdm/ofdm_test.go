package ofdm

import (
	"bytes"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"secureangle/internal/dsp"
)

func TestParams(t *testing.T) {
	p := DefaultParams()
	if p.NFFT != 64 || p.CP != 16 || p.SampleRate != 20e6 {
		t.Fatalf("DefaultParams = %+v", p)
	}
	if p.SymbolLen() != 80 {
		t.Errorf("SymbolLen = %d", p.SymbolLen())
	}
	if len(p.DataCarriers()) != 48 {
		t.Errorf("data carriers = %d, want 48", len(p.DataCarriers()))
	}
	if len(p.PilotCarriers()) != 4 {
		t.Errorf("pilot carriers = %d", len(p.PilotCarriers()))
	}
	// No overlap between data and pilots; no DC.
	seen := map[int]bool{0: true}
	for _, k := range p.PilotCarriers() {
		seen[k] = true
	}
	for _, k := range p.DataCarriers() {
		if seen[k] {
			t.Errorf("carrier %d reused", k)
		}
	}
}

func TestModulationMeta(t *testing.T) {
	cases := []struct {
		m    Modulation
		bits int
		name string
	}{
		{BPSK, 1, "BPSK"}, {QPSK, 2, "QPSK"}, {QAM16, 4, "16-QAM"}, {QAM64, 6, "64-QAM"},
	}
	for _, c := range cases {
		if c.m.BitsPerSymbol() != c.bits {
			t.Errorf("%v bits = %d", c.m, c.m.BitsPerSymbol())
		}
		if c.m.String() != c.name {
			t.Errorf("%v name = %s", c.m, c.m.String())
		}
	}
}

func TestMapDemapRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, m := range []Modulation{BPSK, QPSK, QAM16, QAM64} {
		bits := make([]byte, 48*m.BitsPerSymbol())
		for i := range bits {
			bits[i] = byte(rng.Intn(2))
		}
		syms, err := MapBits(bits, m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		back := DemapSymbols(syms, m)
		if !bytes.Equal(back, bits) {
			t.Fatalf("%v: bits did not round-trip", m)
		}
	}
}

func TestMapBitsUnitAveragePower(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, m := range []Modulation{QPSK, QAM16, QAM64} {
		bits := make([]byte, 6000*m.BitsPerSymbol())
		for i := range bits {
			bits[i] = byte(rng.Intn(2))
		}
		syms, _ := MapBits(bits, m)
		var p float64
		for _, s := range syms {
			p += real(s)*real(s) + imag(s)*imag(s)
		}
		p /= float64(len(syms))
		if math.Abs(p-1) > 0.05 {
			t.Errorf("%v average power = %v, want ~1", m, p)
		}
	}
}

func TestMapBitsRejectsBadLength(t *testing.T) {
	if _, err := MapBits([]byte{1, 0, 1}, QPSK); err == nil {
		t.Error("odd bit count accepted for QPSK")
	}
}

func TestBitsBytesRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) == 0 {
			return true
		}
		back, err := BitsToBytes(BytesToBits(data))
		return err == nil && bytes.Equal(back, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
	if _, err := BitsToBytes([]byte{1, 0, 1}); err == nil {
		t.Error("non-multiple-of-8 accepted")
	}
	if _, err := BitsToBytes([]byte{0, 1, 2, 0, 0, 0, 0, 0}); err == nil {
		t.Error("non-binary bit accepted")
	}
}

func TestPreambleStructure(t *testing.T) {
	mod := NewModulator(DefaultParams())
	pre := mod.Preamble()
	if len(pre) != 240 {
		t.Fatalf("preamble length = %d, want 240", len(pre))
	}
	// The STF core (after CP) must have two identical 32-sample halves —
	// the property Schmidl-Cox detection relies on.
	core := pre[16:80]
	for i := 0; i < 32; i++ {
		if cmplx.Abs(core[i]-core[i+32]) > 1e-9 {
			t.Fatalf("STF halves differ at %d", i)
		}
	}
	// And four identical quarters (802.11a structure).
	for i := 0; i < 16; i++ {
		for q := 1; q < 4; q++ {
			if cmplx.Abs(core[i]-core[i+16*q]) > 1e-9 {
				t.Fatalf("STF quarters differ at %d/%d", i, q)
			}
		}
	}
	// Second STF symbol identical to the first.
	for i := 0; i < 80; i++ {
		if cmplx.Abs(pre[i]-pre[80+i]) > 1e-9 {
			t.Fatal("STF symbols 1 and 2 differ")
		}
	}
}

func TestCyclicPrefix(t *testing.T) {
	mod := NewModulator(DefaultParams())
	pts := make([]complex128, 48)
	for i := range pts {
		pts[i] = 1
	}
	sym, err := mod.ModulateSymbol(pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(sym) != 80 {
		t.Fatalf("symbol length = %d", len(sym))
	}
	// CP must replicate the symbol tail.
	for i := 0; i < 16; i++ {
		if cmplx.Abs(sym[i]-sym[64+i]) > 1e-12 {
			t.Fatalf("CP mismatch at %d", i)
		}
	}
}

func TestModulateSymbolRejectsWrongCount(t *testing.T) {
	mod := NewModulator(DefaultParams())
	if _, err := mod.ModulateSymbol(make([]complex128, 47)); err == nil {
		t.Error("wrong point count accepted")
	}
}

func TestBuildPacketShape(t *testing.T) {
	mod := NewModulator(DefaultParams())
	payload := bytes.Repeat([]byte{0xA5}, 100)
	pkt, err := mod.BuildPacket(payload, QPSK)
	if err != nil {
		t.Fatal(err)
	}
	// 100 bytes = 800 bits; QPSK carries 96 bits/symbol -> 9 symbols
	// (864 bits with padding).
	if pkt.NSymbols != 9 {
		t.Errorf("NSymbols = %d, want 9", pkt.NSymbols)
	}
	want := 240 + 9*80
	if len(pkt.Samples) != want {
		t.Errorf("samples = %d, want %d", len(pkt.Samples), want)
	}
}

func TestModulateDemodulateCleanChannel(t *testing.T) {
	mod := NewModulator(DefaultParams())
	dem := NewDemodulator(DefaultParams())
	rng := rand.New(rand.NewSource(3))
	for _, m := range []Modulation{BPSK, QPSK, QAM16, QAM64} {
		payload := make([]byte, 60)
		rng.Read(payload)
		pkt, err := mod.BuildPacket(payload, m)
		if err != nil {
			t.Fatal(err)
		}
		bits, err := dem.Demodulate(pkt.Samples, pkt.NSymbols, m)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bits, pkt.PayloadBits) {
			t.Errorf("%v: clean-channel demod failed", m)
		}
	}
}

func TestDemodulateThroughFlatChannel(t *testing.T) {
	// A complex gain and integer delay should be fully equalised.
	mod := NewModulator(DefaultParams())
	dem := NewDemodulator(DefaultParams())
	rng := rand.New(rand.NewSource(4))
	payload := make([]byte, 96)
	rng.Read(payload)
	pkt, _ := mod.BuildPacket(payload, QAM16)

	rx := make([]complex128, len(pkt.Samples))
	g := cmplx.Rect(0.3, 1.234)
	for i, s := range pkt.Samples {
		rx[i] = s * g
	}
	bits, err := dem.Demodulate(rx, pkt.NSymbols, QAM16)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bits, pkt.PayloadBits) {
		t.Error("flat-channel demod failed")
	}
}

func TestDemodulateThroughMultipathChannel(t *testing.T) {
	// Two-tap channel within the CP must be equalised by the
	// frequency-domain single-tap equaliser.
	mod := NewModulator(DefaultParams())
	dem := NewDemodulator(DefaultParams())
	rng := rand.New(rand.NewSource(5))
	payload := make([]byte, 96)
	rng.Read(payload)
	pkt, _ := mod.BuildPacket(payload, QPSK)

	h := []complex128{1, 0, 0, 0.4i, 0, 0.2}
	rx := dsp.Convolve(pkt.Samples, h)[:len(pkt.Samples)]
	bits, err := dem.Demodulate(rx, pkt.NSymbols, QPSK)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bits, pkt.PayloadBits) {
		t.Error("multipath demod failed")
	}
}

func TestDemodulateWithNoise(t *testing.T) {
	mod := NewModulator(DefaultParams())
	dem := NewDemodulator(DefaultParams())
	rng := rand.New(rand.NewSource(6))
	payload := make([]byte, 96)
	rng.Read(payload)
	pkt, _ := mod.BuildPacket(payload, BPSK)

	rx := make([]complex128, len(pkt.Samples))
	copy(rx, pkt.Samples)
	// ~20 dB SNR: sigma^2 = signal power / 100.
	sp := dsp.Power(pkt.Samples)
	std := math.Sqrt(sp / 100 / 2)
	for i := range rx {
		rx[i] += complex(rng.NormFloat64()*std, rng.NormFloat64()*std)
	}
	bits, err := dem.Demodulate(rx, pkt.NSymbols, BPSK)
	if err != nil {
		t.Fatal(err)
	}
	errs := 0
	for i := range bits {
		if bits[i] != pkt.PayloadBits[i] {
			errs++
		}
	}
	if errs > 0 {
		t.Errorf("BPSK at 20 dB: %d bit errors", errs)
	}
}

func TestDemodulateTooShort(t *testing.T) {
	dem := NewDemodulator(DefaultParams())
	if _, err := dem.Demodulate(make([]complex128, 10), 1, BPSK); err == nil {
		t.Error("short input accepted")
	}
}

func TestPreambleOccupiedBandOnly(t *testing.T) {
	// STF and LTF must not occupy bins beyond +-26 or DC.
	mod := NewModulator(DefaultParams())
	for name, f := range map[string][]complex128{
		"stf": mod.shortTrainingFreq(),
		"ltf": mod.longTrainingFreq(),
	} {
		if f[0] != 0 {
			t.Errorf("%s has DC energy", name)
		}
		for k := 27; k <= 64-27; k++ {
			if f[k] != 0 {
				t.Errorf("%s occupies guard bin %d", name, k)
			}
		}
	}
}

func BenchmarkBuildPacket(b *testing.B) {
	mod := NewModulator(DefaultParams())
	payload := bytes.Repeat([]byte{0x5A}, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mod.BuildPacket(payload, QAM16); err != nil {
			b.Fatal(err)
		}
	}
}
