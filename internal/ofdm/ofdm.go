// Package ofdm implements an 802.11a/g-style OFDM physical layer at
// 20 MHz: 64-point FFT symbols with a 16-sample cyclic prefix, 48 data and
// 4 pilot subcarriers, BPSK through 64-QAM constellations, and a
// Schmidl-Cox-compatible preamble (a training symbol built from
// even-indexed subcarriers so its time-domain form is two identical
// halves, followed by a long training symbol for channel estimation).
//
// SecureAngle does not demodulate payloads to compute AoA — it only needs
// real OFDM waveforms and packet timing — but the full modulator and
// demodulator are implemented so the testbed traffic is genuine and
// end-to-end verifiable.
package ofdm

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"

	"secureangle/internal/dsp"
)

// Params fixes the OFDM numerology.
type Params struct {
	NFFT       int     // FFT size (64)
	CP         int     // cyclic prefix samples (16)
	SampleRate float64 // Hz (20e6)
}

// DefaultParams returns the 802.11a/g 20 MHz numerology.
func DefaultParams() Params {
	return Params{NFFT: 64, CP: 16, SampleRate: 20e6}
}

// SymbolLen returns the samples per OFDM symbol including CP.
func (p Params) SymbolLen() int { return p.NFFT + p.CP }

// DataCarriers returns the 48 data subcarrier indices (FFT bin order) of
// 802.11a: +-1..26 minus the pilots at +-7 and +-21.
func (p Params) DataCarriers() []int {
	var out []int
	for k := -26; k <= 26; k++ {
		switch k {
		case 0, 7, -7, 21, -21:
			continue
		}
		out = append(out, (k+p.NFFT)%p.NFFT)
	}
	return out
}

// PilotCarriers returns the four 802.11a pilot bins.
func (p Params) PilotCarriers() []int {
	n := p.NFFT
	return []int{(7 + n) % n, (21 + n) % n, (-7 + n) % n, (-21 + n) % n}
}

// pilotValues are the fixed BPSK pilot symbols (sign pattern of 802.11a's
// first data symbol; polarity scrambling is omitted since the receiver
// here is ours).
var pilotValues = []complex128{1, 1, 1, -1}

// Modulation selects the data constellation.
type Modulation int

const (
	BPSK Modulation = iota
	QPSK
	QAM16
	QAM64
)

// String names the modulation.
func (m Modulation) String() string {
	switch m {
	case BPSK:
		return "BPSK"
	case QPSK:
		return "QPSK"
	case QAM16:
		return "16-QAM"
	case QAM64:
		return "64-QAM"
	default:
		return fmt.Sprintf("Modulation(%d)", int(m))
	}
}

// BitsPerSymbol returns the bits carried per constellation point.
func (m Modulation) BitsPerSymbol() int {
	switch m {
	case BPSK:
		return 1
	case QPSK:
		return 2
	case QAM16:
		return 4
	case QAM64:
		return 6
	default:
		panic("ofdm: unknown modulation")
	}
}

// mapQAMAxis gray-maps b bits to a PAM level, normalised later.
func mapPAM(bits []byte) float64 {
	// Gray mapping for 1, 2 or 3 bits per axis: 802.11a table.
	switch len(bits) {
	case 1:
		return float64(2*int(bits[0]) - 1) // 0->-1, 1->+1
	case 2:
		// Gray: 00->-3 01->-1 11->+1 10->+3
		v := bits[0]<<1 | bits[1]
		return []float64{-3, -1, 3, 1}[v]
	case 3:
		v := bits[0]<<2 | bits[1]<<1 | bits[2]
		return []float64{-7, -5, -1, -3, 7, 5, 1, 3}[v]
	default:
		panic("ofdm: unsupported PAM width")
	}
}

func demapPAM(v float64, nbits int) []byte {
	// Slice to the nearest level and invert the gray map.
	switch nbits {
	case 1:
		if v >= 0 {
			return []byte{1}
		}
		return []byte{0}
	case 2:
		levels := []float64{-3, -1, 3, 1}
		codes := [][]byte{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
		return codes[nearest(levels, v)]
	case 3:
		levels := []float64{-7, -5, -1, -3, 7, 5, 1, 3}
		codes := [][]byte{{0, 0, 0}, {0, 0, 1}, {0, 1, 0}, {0, 1, 1}, {1, 0, 0}, {1, 0, 1}, {1, 1, 0}, {1, 1, 1}}
		return codes[nearest(levels, v)]
	default:
		panic("ofdm: unsupported PAM width")
	}
}

func nearest(levels []float64, v float64) int {
	best, bd := 0, math.Inf(1)
	for i, l := range levels {
		if d := math.Abs(v - l); d < bd {
			best, bd = i, d
		}
	}
	return best
}

// normFactor returns the constellation normalisation so average symbol
// energy is 1 (802.11a Kmod).
func normFactor(m Modulation) float64 {
	switch m {
	case BPSK:
		return 1
	case QPSK:
		return math.Sqrt2
	case QAM16:
		return math.Sqrt(10)
	case QAM64:
		return math.Sqrt(42)
	default:
		panic("ofdm: unknown modulation")
	}
}

// MapBits maps a bit slice (one bit per byte, values 0/1) to constellation
// points. The bit count must be a multiple of BitsPerSymbol.
func MapBits(bits []byte, m Modulation) ([]complex128, error) {
	bps := m.BitsPerSymbol()
	if len(bits)%bps != 0 {
		return nil, fmt.Errorf("ofdm: %d bits not divisible by %d", len(bits), bps)
	}
	norm := normFactor(m)
	out := make([]complex128, 0, len(bits)/bps)
	for i := 0; i < len(bits); i += bps {
		chunk := bits[i : i+bps]
		var re, im float64
		switch m {
		case BPSK:
			re = mapPAM(chunk[:1])
			im = 0
		default:
			half := bps / 2
			re = mapPAM(chunk[:half])
			im = mapPAM(chunk[half:])
		}
		out = append(out, complex(re/norm, im/norm))
	}
	return out, nil
}

// DemapSymbols hard-decides constellation points back to bits.
func DemapSymbols(syms []complex128, m Modulation) []byte {
	bps := m.BitsPerSymbol()
	norm := normFactor(m)
	out := make([]byte, 0, len(syms)*bps)
	for _, s := range syms {
		re := real(s) * norm
		im := imag(s) * norm
		switch m {
		case BPSK:
			out = append(out, demapPAM(re, 1)...)
		default:
			half := bps / 2
			out = append(out, demapPAM(re, half)...)
			out = append(out, demapPAM(im, half)...)
		}
	}
	return out
}

// BytesToBits expands bytes to one-bit-per-byte (MSB first).
func BytesToBits(b []byte) []byte {
	out := make([]byte, 0, len(b)*8)
	for _, v := range b {
		for i := 7; i >= 0; i-- {
			out = append(out, (v>>uint(i))&1)
		}
	}
	return out
}

// BitsToBytes packs bits (MSB first) into bytes; len(bits) must be a
// multiple of 8.
func BitsToBytes(bits []byte) ([]byte, error) {
	if len(bits)%8 != 0 {
		return nil, errors.New("ofdm: bit count not a multiple of 8")
	}
	out := make([]byte, len(bits)/8)
	for i, b := range bits {
		if b > 1 {
			return nil, errors.New("ofdm: bit values must be 0 or 1")
		}
		out[i/8] |= b << uint(7-i%8)
	}
	return out, nil
}

// Modulator builds OFDM waveforms.
type Modulator struct {
	P Params
}

// NewModulator returns a modulator with the given numerology.
func NewModulator(p Params) *Modulator { return &Modulator{P: p} }

// shortTrainingFreq puts QPSK energy on every 4th subcarrier (802.11a STF
// layout), making the 64-sample time symbol consist of four identical
// 16-sample quarters — and therefore also two identical 32-sample halves,
// which is exactly the structure the Schmidl-Cox detector correlates on.
func (mod *Modulator) shortTrainingFreq() []complex128 {
	n := mod.P.NFFT
	f := make([]complex128, n)
	s := complex(math.Sqrt(13.0/6.0), 0)
	set := func(k int, v complex128) { f[(k+n)%n] = v * s }
	// 802.11a S_-26..26 nonzero entries.
	pos := map[int]complex128{
		-24: 1 + 1i, -20: -1 - 1i, -16: 1 + 1i, -12: -1 - 1i, -8: -1 - 1i, -4: 1 + 1i,
		4: -1 - 1i, 8: -1 - 1i, 12: 1 + 1i, 16: 1 + 1i, 20: 1 + 1i, 24: 1 + 1i,
	}
	for k, v := range pos {
		set(k, v)
	}
	return f
}

// longTrainingFreq is the 802.11a LTF: BPSK +-1 on all 52 occupied bins.
func (mod *Modulator) longTrainingFreq() []complex128 {
	n := mod.P.NFFT
	f := make([]complex128, n)
	seq := []int{ // L_-26..L_26 from the standard (0 at DC)
		1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1, 1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1,
		0,
		1, -1, -1, 1, 1, -1, 1, -1, 1, -1, -1, -1, -1, -1, 1, 1, -1, -1, 1, -1, 1, -1, 1, 1, 1, 1,
	}
	for i, v := range seq {
		k := i - 26
		f[(k+n)%n] = complex(float64(v), 0)
	}
	return f
}

// Preamble returns the packet preamble: two short-training OFDM symbols
// (each 80 samples with CP, halves identical within the 64-sample core)
// followed by one long-training symbol. Total 240 samples.
func (mod *Modulator) Preamble() []complex128 {
	stf := mod.symbolFromFreq(mod.shortTrainingFreq())
	ltf := mod.symbolFromFreq(mod.longTrainingFreq())
	out := make([]complex128, 0, 2*len(stf)+len(ltf))
	out = append(out, stf...)
	out = append(out, stf...)
	out = append(out, ltf...)
	return out
}

// LongTrainingRef returns the frequency-domain LTF reference for channel
// estimation.
func (mod *Modulator) LongTrainingRef() []complex128 { return mod.longTrainingFreq() }

// symbolFromFreq converts one frequency-domain symbol to time domain and
// prepends the cyclic prefix.
func (mod *Modulator) symbolFromFreq(f []complex128) []complex128 {
	t := dsp.IFFT(f)
	// Scale so symbol power is independent of FFT size convention.
	dsp.Scale(t, complex(math.Sqrt(float64(mod.P.NFFT)), 0))
	out := make([]complex128, 0, mod.P.CP+mod.P.NFFT)
	out = append(out, t[mod.P.NFFT-mod.P.CP:]...)
	out = append(out, t...)
	return out
}

// ModulateSymbol builds one data OFDM symbol from exactly
// len(DataCarriers()) constellation points.
func (mod *Modulator) ModulateSymbol(data []complex128) ([]complex128, error) {
	dc := mod.P.DataCarriers()
	if len(data) != len(dc) {
		return nil, fmt.Errorf("ofdm: symbol needs %d points, got %d", len(dc), len(data))
	}
	f := make([]complex128, mod.P.NFFT)
	for i, k := range dc {
		f[k] = data[i]
	}
	for i, k := range mod.P.PilotCarriers() {
		f[k] = pilotValues[i]
	}
	return mod.symbolFromFreq(f), nil
}

// Packet is a fully-built OFDM packet.
type Packet struct {
	Samples  []complex128
	NSymbols int
	Mod      Modulation
	// PayloadBits is the padded bit stream carried by the data symbols.
	PayloadBits []byte
}

// BuildPacket maps payload bytes onto OFDM data symbols (zero-padding the
// final symbol) and concatenates preamble + data symbols.
func (mod *Modulator) BuildPacket(payload []byte, m Modulation) (*Packet, error) {
	bits := BytesToBits(payload)
	perSym := len(mod.P.DataCarriers()) * m.BitsPerSymbol()
	for len(bits)%perSym != 0 {
		bits = append(bits, 0)
	}
	samples := mod.Preamble()
	nsym := len(bits) / perSym
	for s := 0; s < nsym; s++ {
		pts, err := MapBits(bits[s*perSym:(s+1)*perSym], m)
		if err != nil {
			return nil, err
		}
		sym, err := mod.ModulateSymbol(pts)
		if err != nil {
			return nil, err
		}
		samples = append(samples, sym...)
	}
	return &Packet{Samples: samples, NSymbols: nsym, Mod: m, PayloadBits: bits}, nil
}

// Demodulator recovers bits from a received packet (single antenna).
type Demodulator struct {
	P Params
}

// NewDemodulator returns a demodulator for the numerology.
func NewDemodulator(p Params) *Demodulator { return &Demodulator{P: p} }

// Demodulate takes samples beginning exactly at the packet start (output
// of the detector), estimates the channel from the long training symbol,
// equalises each data symbol, and returns the recovered bits of nsym data
// symbols.
func (dem *Demodulator) Demodulate(rx []complex128, nsym int, m Modulation) ([]byte, error) {
	p := dem.P
	symLen := p.SymbolLen()
	need := 3*symLen + nsym*symLen
	if len(rx) < need {
		return nil, fmt.Errorf("ofdm: need %d samples, have %d", need, len(rx))
	}
	mod := NewModulator(p)
	ref := mod.LongTrainingRef()

	// Channel estimate from the LTF (third preamble symbol).
	ltStart := 2*symLen + p.CP
	lt := dsp.FFT(rx[ltStart : ltStart+p.NFFT])
	scale := complex(1/math.Sqrt(float64(p.NFFT)), 0)
	h := make([]complex128, p.NFFT)
	for k := range h {
		if ref[k] != 0 {
			h[k] = lt[k] * scale / ref[k]
		}
	}

	dc := p.DataCarriers()
	var bits []byte
	for s := 0; s < nsym; s++ {
		start := 3*symLen + s*symLen + p.CP
		f := dsp.FFT(rx[start : start+p.NFFT])
		// Residual common phase from the pilots.
		var pilotRot complex128
		for i, k := range p.PilotCarriers() {
			if h[k] != 0 {
				pilotRot += (f[k] * scale / h[k]) * cmplx.Conj(pilotValues[i])
			}
		}
		if pilotRot != 0 {
			pilotRot /= complex(cmplx.Abs(pilotRot), 0)
		} else {
			pilotRot = 1
		}
		pts := make([]complex128, len(dc))
		for i, k := range dc {
			if h[k] == 0 {
				continue
			}
			pts[i] = f[k] * scale / h[k] / pilotRot
		}
		bits = append(bits, DemapSymbols(pts, m)...)
	}
	return bits, nil
}
