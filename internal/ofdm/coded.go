package ofdm

import (
	"errors"

	"secureangle/internal/fec"
	"secureangle/internal/wifi"
)

// Coded transmission: the full 802.11a bit pipeline — scramble,
// convolutional encode (rate 1/2), per-symbol interleave, map — and its
// inverse. This is what real traffic through the testbed looks like; the
// AoA pipeline itself never needs the bits, but end-to-end experiments
// (e.g. "does the fence actually stop the payload?") do.

// scramblerSeed is the fixed seed both ends use (a real transmitter sends
// the seed in the SERVICE field; the simulation fixes it).
const scramblerSeed = 0x5d

// BuildCodedPacket builds a packet whose payload bits are scrambled,
// rate-1/2 convolutionally coded, and block-interleaved per OFDM symbol.
func (mod *Modulator) BuildCodedPacket(payload []byte, m Modulation) (*Packet, error) {
	bits := BytesToBits(payload)
	wifi.NewScrambler(scramblerSeed).Apply(bits)
	coded := fec.Encode(bits)

	ncbps := len(mod.P.DataCarriers()) * m.BitsPerSymbol()
	for len(coded)%ncbps != 0 {
		coded = append(coded, 0)
	}
	il, err := fec.NewInterleaver(ncbps, m.BitsPerSymbol())
	if err != nil {
		return nil, err
	}
	samples := mod.Preamble()
	nsym := len(coded) / ncbps
	txBits := make([]byte, 0, len(coded))
	for s := 0; s < nsym; s++ {
		symBits, err := il.Interleave(coded[s*ncbps : (s+1)*ncbps])
		if err != nil {
			return nil, err
		}
		txBits = append(txBits, symBits...)
		pts, err := MapBits(symBits, m)
		if err != nil {
			return nil, err
		}
		sym, err := mod.ModulateSymbol(pts)
		if err != nil {
			return nil, err
		}
		samples = append(samples, sym...)
	}
	return &Packet{Samples: samples, NSymbols: nsym, Mod: m, PayloadBits: txBits}, nil
}

// ErrCodedLength reports a coded payload whose length cannot be decoded.
var ErrCodedLength = errors.New("ofdm: coded payload length mismatch")

// DemodulateCoded reverses BuildCodedPacket: demodulate, deinterleave,
// Viterbi-decode, descramble, and return payloadLen bytes.
func (dem *Demodulator) DemodulateCoded(rx []complex128, nsym int, m Modulation, payloadLen int) ([]byte, error) {
	raw, err := dem.Demodulate(rx, nsym, m)
	if err != nil {
		return nil, err
	}
	ncbps := len(dem.P.DataCarriers()) * m.BitsPerSymbol()
	il, err := fec.NewInterleaver(ncbps, m.BitsPerSymbol())
	if err != nil {
		return nil, err
	}
	coded := make([]byte, 0, len(raw))
	for s := 0; s*ncbps < len(raw); s++ {
		symBits, err := il.Deinterleave(raw[s*ncbps : (s+1)*ncbps])
		if err != nil {
			return nil, err
		}
		coded = append(coded, symBits...)
	}
	// The encoder emitted 2*(8*payloadLen + 6) coded bits, padded to the
	// symbol boundary with zeros; trim before decoding.
	need := 2 * (8*payloadLen + fec.K - 1)
	if len(coded) < need {
		return nil, ErrCodedLength
	}
	bits, err := fec.Decode(coded[:need])
	if err != nil {
		return nil, err
	}
	wifi.NewScrambler(scramblerSeed).Apply(bits)
	return BitsToBytes(bits)
}
