package ofdm

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"secureangle/internal/dsp"
)

func TestCodedRoundTripClean(t *testing.T) {
	mod := NewModulator(DefaultParams())
	dem := NewDemodulator(DefaultParams())
	rng := rand.New(rand.NewSource(1))
	for _, m := range []Modulation{BPSK, QPSK, QAM16, QAM64} {
		payload := make([]byte, 75)
		rng.Read(payload)
		pkt, err := mod.BuildCodedPacket(payload, m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := dem.DemodulateCoded(pkt.Samples, pkt.NSymbols, m, len(payload))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("%v: coded round trip failed", m)
		}
	}
}

func TestCodedPacketIsHalfRate(t *testing.T) {
	mod := NewModulator(DefaultParams())
	payload := bytes.Repeat([]byte{0xAA}, 96)
	coded, err := mod.BuildCodedPacket(payload, QPSK)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := mod.BuildPacket(payload, QPSK)
	if err != nil {
		t.Fatal(err)
	}
	// Rate 1/2: roughly twice the data symbols (padding aside).
	if coded.NSymbols < 2*plain.NSymbols-1 {
		t.Errorf("coded %d symbols vs plain %d", coded.NSymbols, plain.NSymbols)
	}
}

// codedVsUncodedAtSNR returns (codedOK, uncodedBitErrors) for one trial.
func codedVsUncodedAtSNR(t *testing.T, snrDB float64, seed int64) (bool, int) {
	t.Helper()
	mod := NewModulator(DefaultParams())
	dem := NewDemodulator(DefaultParams())
	rng := rand.New(rand.NewSource(seed))
	payload := make([]byte, 96)
	rng.Read(payload)

	addNoise := func(x []complex128) []complex128 {
		out := make([]complex128, len(x))
		copy(out, x)
		sp := dsp.Power(x)
		std := math.Sqrt(sp / dsp.FromDB(snrDB) / 2)
		for i := range out {
			out[i] += complex(rng.NormFloat64()*std, rng.NormFloat64()*std)
		}
		return out
	}

	coded, err := mod.BuildCodedPacket(payload, QAM16)
	if err != nil {
		t.Fatal(err)
	}
	gotCoded, err := dem.DemodulateCoded(addNoise(coded.Samples), coded.NSymbols, QAM16, len(payload))
	codedOK := err == nil && bytes.Equal(gotCoded, payload)

	plain, err := mod.BuildPacket(payload, QAM16)
	if err != nil {
		t.Fatal(err)
	}
	bits, err := dem.Demodulate(addNoise(plain.Samples), plain.NSymbols, QAM16)
	if err != nil {
		t.Fatal(err)
	}
	errsUncoded := 0
	for i := range bits {
		if bits[i] != plain.PayloadBits[i] {
			errsUncoded++
		}
	}
	return codedOK, errsUncoded
}

func TestCodingGain(t *testing.T) {
	// At an SNR where uncoded 16-QAM takes regular bit errors, the coded
	// chain must still deliver the payload intact in most trials.
	const snr = 14.0
	codedWins, uncodedErrTotal := 0, 0
	const trials = 8
	for i := int64(0); i < trials; i++ {
		ok, errs := codedVsUncodedAtSNR(t, snr, 100+i)
		if ok {
			codedWins++
		}
		uncodedErrTotal += errs
	}
	if uncodedErrTotal == 0 {
		t.Skip("channel too clean to demonstrate coding gain at this SNR")
	}
	if codedWins < trials-2 {
		t.Errorf("coded chain delivered %d/%d payloads at %v dB (uncoded had %d bit errors total)",
			codedWins, trials, snr, uncodedErrTotal)
	}
}

func TestDemodulateCodedErrors(t *testing.T) {
	dem := NewDemodulator(DefaultParams())
	mod := NewModulator(DefaultParams())
	pkt, _ := mod.BuildCodedPacket([]byte("x"), BPSK)
	// Asking for more payload than the packet carries.
	if _, err := dem.DemodulateCoded(pkt.Samples, pkt.NSymbols, BPSK, 1000); err == nil {
		t.Error("oversized payload length accepted")
	}
}
