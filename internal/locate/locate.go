// Package locate fuses direct-path bearings from multiple SecureAngle APs
// into client positions and implements the virtual fence of section 2.3.1:
// "the intersection point of the direct path AoA is identified as the
// location of client", with frames from clients located outside a
// protected boundary dropped. It also implements the false-positive
// rejection of section 3.1 — reflection-path peaks from different APs do
// not intersect consistently, so the candidate combination with the
// smallest triangulation residual identifies the true direct paths.
package locate

import (
	"errors"
	"math"

	"secureangle/internal/geom"
)

// BearingObs is one AP's bearing observation of a client.
type BearingObs struct {
	AP         geom.Point
	BearingDeg float64
	// Weight scales the observation's influence (e.g. by peak strength
	// or SNR); zero means 1.
	Weight float64
}

// ErrUnderdetermined is returned when fewer than two usable bearings are
// supplied.
var ErrUnderdetermined = errors.New("locate: need at least two bearings")

// ErrDegenerate is returned when all bearing lines are (nearly) parallel.
var ErrDegenerate = errors.New("locate: bearing lines nearly parallel")

// Triangulate returns the weighted least-squares intersection of the
// bearing lines: the point x minimising sum_i w_i * (n_i . x - n_i . p_i)^2
// with n_i the unit normal of AP i's bearing line.
//
// The unknown is always two-dimensional, so the normal equations
// (A^T A) x = A^T b form a symmetric 2x2 system solved in closed form —
// no matrix scratch, no allocations. This sits on the controller's
// per-decision hot path (fusion finalize), where the general
// cmat.SolveLeastSquaresReal path used to cost ~11 allocs per call.
func Triangulate(obs []BearingObs) (geom.Point, error) {
	if len(obs) < 2 {
		return geom.Point{}, ErrUnderdetermined
	}
	// Accumulate A^T A = [[s00 s01][s01 s11]] and A^T b = (t0, t1)
	// directly from the observations.
	var s00, s01, s11, t0, t1 float64
	for _, o := range obs {
		w := o.Weight
		if w <= 0 {
			w = 1
		}
		rad := o.BearingDeg * math.Pi / 180
		// Line direction (cos, sin); normal (-sin, cos).
		nx, ny := -math.Sin(rad), math.Cos(rad)
		b := nx*o.AP.X + ny*o.AP.Y
		s00 += w * nx * nx
		s01 += w * nx * ny
		s11 += w * ny * ny
		t0 += w * nx * b
		t1 += w * ny * b
	}
	det := s00*s11 - s01*s01
	if det == 0 || math.IsNaN(det) {
		return geom.Point{}, ErrDegenerate
	}
	return geom.Point{
		X: (s11*t0 - s01*t1) / det,
		Y: (s00*t1 - s01*t0) / det,
	}, nil
}

// Residual returns the RMS perpendicular distance (metres) from p to the
// bearing lines — the consistency measure used for outlier rejection.
func Residual(p geom.Point, obs []BearingObs) float64 {
	if len(obs) == 0 {
		return 0
	}
	var s float64
	for _, o := range obs {
		rad := o.BearingDeg * math.Pi / 180
		nx, ny := -math.Sin(rad), math.Cos(rad)
		d := nx*(p.X-o.AP.X) + ny*(p.Y-o.AP.Y)
		s += d * d
	}
	return math.Sqrt(s / float64(len(obs)))
}

// ForwardConsistent reports whether p lies in the forward direction of
// every bearing (a line intersection behind an AP is geometrically
// impossible for a real source and marks a false-positive combination).
func ForwardConsistent(p geom.Point, obs []BearingObs) bool {
	for _, o := range obs {
		rad := o.BearingDeg * math.Pi / 180
		dx, dy := math.Cos(rad), math.Sin(rad)
		if dx*(p.X-o.AP.X)+dy*(p.Y-o.AP.Y) < 0 {
			return false
		}
	}
	return true
}

// ResolveCandidates handles the false direct paths of section 3.1: each AP
// contributes a small set of candidate bearings (its pseudospectrum's top
// peaks); the combination whose lines intersect most consistently — the
// minimum-residual, forward-consistent choice — identifies the true
// direct paths and the client position.
func ResolveCandidates(aps []geom.Point, candidates [][]float64) (geom.Point, []float64, error) {
	if len(aps) != len(candidates) {
		return geom.Point{}, nil, errors.New("locate: aps and candidates length mismatch")
	}
	if len(aps) < 2 {
		return geom.Point{}, nil, ErrUnderdetermined
	}
	for _, c := range candidates {
		if len(c) == 0 {
			return geom.Point{}, nil, errors.New("locate: empty candidate set")
		}
	}
	idx := make([]int, len(aps))
	bestRes := math.Inf(1)
	var bestPos geom.Point
	var bestSel []float64
	for {
		obs := make([]BearingObs, len(aps))
		sel := make([]float64, len(aps))
		for i := range aps {
			sel[i] = candidates[i][idx[i]]
			obs[i] = BearingObs{AP: aps[i], BearingDeg: sel[i]}
		}
		if p, err := Triangulate(obs); err == nil && ForwardConsistent(p, obs) {
			if r := Residual(p, obs); r < bestRes {
				bestRes, bestPos, bestSel = r, p, sel
			}
		}
		// Advance the mixed-radix counter over candidate combinations.
		i := 0
		for ; i < len(idx); i++ {
			idx[i]++
			if idx[i] < len(candidates[i]) {
				break
			}
			idx[i] = 0
		}
		if i == len(idx) {
			break
		}
	}
	if bestSel == nil {
		return geom.Point{}, nil, ErrDegenerate
	}
	return bestPos, bestSel, nil
}

// Decision is a virtual-fence outcome for one located client.
type Decision int

const (
	// Allow: the client is inside the protected boundary.
	Allow Decision = iota
	// Drop: the client is outside; its frames are dropped.
	Drop
)

// String names the decision.
func (d Decision) String() string {
	if d == Allow {
		return "allow"
	}
	return "drop"
}

// Fence is a virtual fence: a protected boundary with an optional safety
// margin (positive margin requires clients to be strictly inside by that
// many metres, absorbing localisation error in the conservative
// direction).
type Fence struct {
	Boundary geom.Polygon
	MarginM  float64
}

// Allows reports whether a located point is acceptable.
func (f *Fence) Allows(p geom.Point) bool {
	if !f.Boundary.Contains(p) {
		return false
	}
	if f.MarginM <= 0 {
		return true
	}
	for _, e := range f.Boundary.Edges() {
		if e.DistToPoint(p) < f.MarginM {
			return false
		}
	}
	return true
}

// Decide triangulates the observations and applies the fence.
func (f *Fence) Decide(obs []BearingObs) (Decision, geom.Point, error) {
	p, err := Triangulate(obs)
	if err != nil {
		return Drop, geom.Point{}, err
	}
	if f.Allows(p) {
		return Allow, p, nil
	}
	return Drop, p, nil
}
