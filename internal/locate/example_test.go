package locate_test

import (
	"fmt"

	"secureangle/internal/geom"
	"secureangle/internal/locate"
)

// ExampleTriangulate shows two APs' bearings intersecting at a client.
func ExampleTriangulate() {
	obs := []locate.BearingObs{
		{AP: geom.Point{X: 0, Y: 0}, BearingDeg: 45},
		{AP: geom.Point{X: 10, Y: 0}, BearingDeg: 135},
	}
	p, _ := locate.Triangulate(obs)
	fmt.Printf("client at (%.0f, %.0f)\n", p.X, p.Y)
	// Output:
	// client at (5, 5)
}

// ExampleFence_Decide shows the virtual fence dropping an outside
// transmitter.
func ExampleFence_Decide() {
	fence := &locate.Fence{Boundary: geom.Rect(0, 0, 24, 16)}
	intruder := geom.Point{X: -4, Y: 8}
	obs := []locate.BearingObs{
		{AP: geom.Point{X: 8, Y: 5}, BearingDeg: geom.BearingDeg(geom.Point{X: 8, Y: 5}, intruder)},
		{AP: geom.Point{X: 12, Y: 13}, BearingDeg: geom.BearingDeg(geom.Point{X: 12, Y: 13}, intruder)},
	}
	decision, pos, _ := fence.Decide(obs)
	fmt.Printf("%s (located at (%.0f, %.0f))\n", decision, pos.X, pos.Y)
	// Output:
	// drop (located at (-4, 8))
}
