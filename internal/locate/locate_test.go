package locate

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"secureangle/internal/geom"
)

func obsFor(aps []geom.Point, target geom.Point) []BearingObs {
	out := make([]BearingObs, len(aps))
	for i, ap := range aps {
		out[i] = BearingObs{AP: ap, BearingDeg: geom.BearingDeg(ap, target)}
	}
	return out
}

func TestTriangulateExactTwoAPs(t *testing.T) {
	aps := []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}}
	target := geom.Point{X: 4, Y: 7}
	p, err := Triangulate(obsFor(aps, target))
	if err != nil {
		t.Fatal(err)
	}
	if p.Dist(target) > 1e-9 {
		t.Errorf("triangulated %v, want %v", p, target)
	}
}

func TestTriangulateThreeAPsOverdetermined(t *testing.T) {
	aps := []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 5, Y: 12}}
	target := geom.Point{X: 6, Y: 5}
	p, err := Triangulate(obsFor(aps, target))
	if err != nil {
		t.Fatal(err)
	}
	if p.Dist(target) > 1e-9 {
		t.Errorf("triangulated %v, want %v", p, target)
	}
}

func TestTriangulateNoisyBearings(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	aps := []geom.Point{{X: 0, Y: 0}, {X: 24, Y: 0}, {X: 12, Y: 16}}
	target := geom.Point{X: 9, Y: 6}
	var worst float64
	for trial := 0; trial < 50; trial++ {
		obs := obsFor(aps, target)
		for i := range obs {
			obs[i].BearingDeg += rng.NormFloat64() * 2 // 2-degree bearing noise
		}
		p, err := Triangulate(obs)
		if err != nil {
			t.Fatal(err)
		}
		worst = math.Max(worst, p.Dist(target))
	}
	// 2 degrees over ~10-15 m baselines: sub-metre typical, bounded ~2 m.
	if worst > 2.5 {
		t.Errorf("worst localisation error %v m", worst)
	}
}

func TestTriangulateErrors(t *testing.T) {
	if _, err := Triangulate(nil); err != ErrUnderdetermined {
		t.Errorf("err = %v", err)
	}
	one := []BearingObs{{AP: geom.Point{}, BearingDeg: 10}}
	if _, err := Triangulate(one); err != ErrUnderdetermined {
		t.Errorf("err = %v", err)
	}
	// Parallel bearings never intersect.
	par := []BearingObs{
		{AP: geom.Point{X: 0, Y: 0}, BearingDeg: 45},
		{AP: geom.Point{X: 5, Y: 0}, BearingDeg: 45},
	}
	if _, err := Triangulate(par); err != ErrDegenerate {
		t.Errorf("parallel err = %v", err)
	}
}

func TestTriangulateWeights(t *testing.T) {
	// Two conflicting high-weight observations pin the solution; a third
	// bogus low-weight bearing should barely move it.
	aps := []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}}
	target := geom.Point{X: 5, Y: 5}
	obs := obsFor(aps, target)
	for i := range obs {
		obs[i].Weight = 100
	}
	obs = append(obs, BearingObs{AP: geom.Point{X: 5, Y: 20}, BearingDeg: 0, Weight: 0.01})
	p, err := Triangulate(obs)
	if err != nil {
		t.Fatal(err)
	}
	if p.Dist(target) > 0.05 {
		t.Errorf("weighted triangulation moved to %v", p)
	}
}

func TestTriangulationRoundTripProperty(t *testing.T) {
	f := func(txSeed, tySeed uint16) bool {
		target := geom.Point{X: float64(txSeed%200)/10 + 1, Y: float64(tySeed%140)/10 + 1}
		aps := []geom.Point{{X: 0, Y: 0}, {X: 24, Y: 0}, {X: 12, Y: 16}}
		// Skip degenerate collinear configurations.
		p, err := Triangulate(obsFor(aps, target))
		if err != nil {
			return true
		}
		return p.Dist(target) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestResidualZeroAtSolution(t *testing.T) {
	aps := []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}}
	target := geom.Point{X: 4, Y: 7}
	obs := obsFor(aps, target)
	if r := Residual(target, obs); r > 1e-9 {
		t.Errorf("residual at truth = %v", r)
	}
	if r := Residual(geom.Point{X: 0, Y: 7}, obs); r < 0.5 {
		t.Errorf("residual away from truth = %v", r)
	}
	if Residual(target, nil) != 0 {
		t.Error("empty residual")
	}
}

func TestForwardConsistent(t *testing.T) {
	ap := geom.Point{X: 0, Y: 0}
	obs := []BearingObs{{AP: ap, BearingDeg: 45}}
	if !ForwardConsistent(geom.Point{X: 3, Y: 3}, obs) {
		t.Error("forward point rejected")
	}
	if ForwardConsistent(geom.Point{X: -3, Y: -3}, obs) {
		t.Error("behind-the-AP point accepted")
	}
}

func TestResolveCandidatesRejectsFalseDirectPaths(t *testing.T) {
	// Section 3.1: each AP reports its true direct bearing plus a strong
	// reflection bearing. Only the true pair intersects consistently.
	aps := []geom.Point{{X: 0, Y: 0}, {X: 24, Y: 0}, {X: 12, Y: 16}}
	target := geom.Point{X: 9, Y: 6}
	truth := make([]float64, 3)
	cands := make([][]float64, 3)
	for i, ap := range aps {
		truth[i] = geom.BearingDeg(ap, target)
		// A reflection peak 40-70 degrees off, listed first (stronger!).
		cands[i] = []float64{truth[i] + 40 + 10*float64(i), truth[i]}
	}
	pos, sel, err := ResolveCandidates(aps, cands)
	if err != nil {
		t.Fatal(err)
	}
	if pos.Dist(target) > 0.1 {
		t.Errorf("resolved position %v, want %v", pos, target)
	}
	for i := range sel {
		if math.Abs(sel[i]-truth[i]) > 1e-9 {
			t.Errorf("AP %d selected %v, want %v", i, sel[i], truth[i])
		}
	}
}

func TestResolveCandidatesErrors(t *testing.T) {
	aps := []geom.Point{{X: 0, Y: 0}}
	if _, _, err := ResolveCandidates(aps, [][]float64{{1}}); err != ErrUnderdetermined {
		t.Errorf("err = %v", err)
	}
	if _, _, err := ResolveCandidates(aps, [][]float64{{1}, {2}}); err == nil {
		t.Error("length mismatch accepted")
	}
	two := []geom.Point{{X: 0, Y: 0}, {X: 5, Y: 0}}
	if _, _, err := ResolveCandidates(two, [][]float64{{1}, {}}); err == nil {
		t.Error("empty candidates accepted")
	}
}

func TestFenceAllows(t *testing.T) {
	f := &Fence{Boundary: geom.Rect(0, 0, 24, 16)}
	if !f.Allows(geom.Point{X: 12, Y: 8}) {
		t.Error("centre rejected")
	}
	if f.Allows(geom.Point{X: -1, Y: 8}) {
		t.Error("outside accepted")
	}
	withMargin := &Fence{Boundary: geom.Rect(0, 0, 24, 16), MarginM: 2}
	if withMargin.Allows(geom.Point{X: 1, Y: 8}) {
		t.Error("margin not enforced")
	}
	if !withMargin.Allows(geom.Point{X: 12, Y: 8}) {
		t.Error("deep-inside point rejected with margin")
	}
}

func TestFenceDecide(t *testing.T) {
	f := &Fence{Boundary: geom.Rect(0, 0, 24, 16)}
	aps := []geom.Point{{X: 4, Y: 4}, {X: 20, Y: 4}}

	inside := geom.Point{X: 12, Y: 10}
	dec, pos, err := f.Decide(obsFor(aps, inside))
	if err != nil || dec != Allow {
		t.Errorf("inside: %v, %v, %v", dec, pos, err)
	}

	outside := geom.Point{X: 12, Y: 25}
	dec, pos, err = f.Decide(obsFor(aps, outside))
	if err != nil || dec != Drop {
		t.Errorf("outside: %v, %v, %v", dec, pos, err)
	}
	if pos.Dist(outside) > 1e-6 {
		t.Errorf("outside localised at %v", pos)
	}
}

func TestDecisionString(t *testing.T) {
	if Allow.String() != "allow" || Drop.String() != "drop" {
		t.Error("decision strings")
	}
}
