package main

// The warm-standby CLI face: `standby` follows a leader's journal
// stream into a local directory and serves clients only after
// promotion (operator POST /promote via `standby -promote`, or
// -promote-after of leader silence); the promoted controller then runs
// the same decision loop as `serve`.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"secureangle/internal/journal"
	"secureangle/internal/locate"
	"secureangle/internal/netproto"
	"secureangle/internal/testbed"
)

// standbyOptions carries `standby`'s knobs.
type standbyOptions struct {
	leader, dir, token string
	listen, opsAddr    string
	requireAuth        bool
	promoteAfter       time.Duration
	segmentBytes       int64
	snapshotEvery      time.Duration
	pprof              bool
}

// runStandby follows o.leader as a warm replica. The replicated
// journal lands in o.dir, replication lag and failover readiness are
// exposed on the ops endpoint, and on promotion the wrapped controller
// starts serving APs on o.listen — sessions that re-present their
// original enrollment tokens are resumed with directive state intact.
func runStandby(o standbyOptions) error {
	if o.leader == "" {
		return fmt.Errorf("standby needs -leader host:port (or -promote to flip a running standby)")
	}
	if o.dir == "" {
		o.dir = "secureangle-standby-journal"
	}
	_, shell := testbed.Building()
	logf := func(format string, args ...any) { fmt.Printf("[standby] "+format+"\n", args...) }
	sb, err := netproto.NewStandby(netproto.StandbyConfig{
		LeaderAddr: o.leader,
		Dir:        o.dir,
		Journal:    journal.Options{SegmentBytes: o.segmentBytes},
		Token:      o.token,
		Fence:      &locate.Fence{Boundary: shell},
		Configure: func(c *netproto.Controller) {
			c.RequireAuth = o.requireAuth
			c.PprofOps = o.pprof
			if o.snapshotEvery != 0 {
				c.SnapshotInterval = o.snapshotEvery
			}
			c.Logf = logf
		},
		PromoteAfter: o.promoteAfter,
		Logf:         logf,
	})
	if err != nil {
		return err
	}
	if o.opsAddr != "" {
		oln, err := net.Listen("tcp", o.opsAddr)
		if err != nil {
			sb.Close()
			return err
		}
		sb.ServeOps(oln)
		fmt.Printf("standby ops endpoint on http://%s (/metrics /status /promote)\n", oln.Addr())
	}
	fmt.Printf("standby following %s, replicating into %s\n", o.leader, o.dir)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Println("\nshutting down")
		cancel()
	}()

	if err := sb.Run(ctx); err != nil {
		sb.Close()
		if ctx.Err() != nil {
			return nil // operator interrupt while warm
		}
		return err
	}

	// Promoted: serve the controller exactly as `serve` would.
	c := sb.Controller()
	ln, err := net.Listen("tcp", o.listen)
	if err != nil {
		return err
	}
	fmt.Printf("promoted: controller listening on %s (APs resume with their original tokens)\n", ln.Addr())
	c.Serve(ln)
	sub := c.Subscribe(64)
	go func() {
		<-ctx.Done()
		c.Close()
	}()
	for d := range sub.C {
		fmt.Printf("decision: %s seq %d -> %s at %v (APs %v)\n", d.MAC, d.SeqNo, d.Decision, d.Pos, d.APs)
	}
	return nil
}

// runStandbyPromote flips a running standby live by POSTing /promote
// to its ops endpoint, then prints the post-promotion status.
func runStandbyPromote(addr string) error {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Post("http://"+addr+"/promote", "", nil)
	if err != nil {
		return fmt.Errorf("is the standby running with -ops %s? %w", addr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("promote: %s: %s", resp.Status, body)
	}
	var st netproto.StandbyStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return err
	}
	fmt.Printf("promoted standby (was following %s)\n", st.Leader)
	for _, p := range st.Partitions {
		fmt.Printf("  partition %d: applied LSN %d of leader %d (lag %d)\n",
			p.Partition, p.AppliedLSN, p.LeaderLSN, p.Lag)
	}
	return nil
}
