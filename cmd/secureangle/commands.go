package main

import (
	"context"
	"fmt"
	"math"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"secureangle/internal/beamform"
	"secureangle/internal/core"
	"secureangle/internal/defense"
	"secureangle/internal/dsp"
	"secureangle/internal/experiments"
	"secureangle/internal/geom"
	"secureangle/internal/journal"
	"secureangle/internal/locate"
	"secureangle/internal/netproto"
	"secureangle/internal/ops"
	"secureangle/internal/radio"
	"secureangle/internal/rng"
	"secureangle/internal/testbed"
	"secureangle/internal/trace"
	"secureangle/internal/wifi"
)

func runFig5(seed int64, packets int) error {
	res, err := experiments.RunFig5(seed, packets)
	if err != nil {
		return err
	}
	fmt.Print(res.Render())
	return nil
}

func runFig6(seed int64, spectra bool) error {
	res, err := experiments.RunFig6(seed)
	if err != nil {
		return err
	}
	fmt.Print(res.Render())
	if spectra {
		fmt.Println("\n# TSV pseudospectra: client, t, angle, dB")
		for _, c := range res.Clients {
			for _, s := range c.Snapshots {
				for i, db := range s.SpectrumDB {
					fmt.Printf("%d\t%g\t%.1f\t%.2f\n", c.ID, s.OffsetSec, res.GridDeg[i], db)
				}
			}
		}
	}
	return nil
}

func runFig7(seed int64, spectra bool) error {
	res, err := experiments.RunFig7(seed)
	if err != nil {
		return err
	}
	fmt.Print(res.Render())
	if spectra {
		fmt.Println("\n# TSV pseudospectra: antennas, angle, dB")
		for _, row := range res.Rows {
			for i, db := range row.SpectrumDB {
				fmt.Printf("%d\t%.1f\t%.2f\n", row.Antennas, row.GridDeg[i], db)
			}
		}
	}
	return nil
}

func runAccuracy(seed int64, packets int) error {
	res, err := experiments.RunAccuracy(seed, packets)
	if err != nil {
		return err
	}
	fmt.Print(res.Render())
	return nil
}

func runFence(seed int64) error {
	res, err := experiments.RunFence(seed)
	if err != nil {
		return err
	}
	fmt.Print(res.Render())
	return nil
}

func runSpoof(seed int64, packets int) error {
	res, err := experiments.RunSpoof(seed, 5, packets)
	if err != nil {
		return err
	}
	fmt.Print(res.Render())
	return nil
}

func runAblation(seed int64) error {
	est, err := experiments.RunEstimatorAblation(seed, 3)
	if err != nil {
		return err
	}
	fmt.Print(est.Render())
	cal, err := experiments.RunCalibrationAblation(seed, 5)
	if err != nil {
		return err
	}
	fmt.Print(cal.Render())
	pvs, err := experiments.RunPacketVsSample(seed, 8)
	if err != nil {
		return err
	}
	fmt.Print(pvs.Render())
	gf, err := experiments.RunGridFreeAblation(seed, 3)
	if err != nil {
		return err
	}
	fmt.Print(gf.Render())
	return nil
}

func runTrack(seed int64) error {
	res, err := experiments.RunMobility(seed)
	if err != nil {
		return err
	}
	fmt.Print(res.Render())
	return nil
}

func runInterference(seed int64) error {
	res, err := experiments.RunInterference(seed)
	if err != nil {
		return err
	}
	fmt.Print(res.Render())
	return nil
}

func testbedMap() string { return testbed.Map() }

func runSNR(seed int64, packets int) error {
	res, err := experiments.RunSNRSweep(seed, packets)
	if err != nil {
		return err
	}
	fmt.Print(res.Render())
	return nil
}

func runBeamform(seed int64) error {
	res, err := experiments.RunBeamform(seed)
	if err != nil {
		return err
	}
	fmt.Print(res.Render())
	return nil
}

// runCalibrate narrates the section 2.2 procedure: show the true hidden
// offsets, the estimates recovered from the cabled reference capture, and
// the residual after applying them.
func runCalibrate(seed int64) error {
	arr := testbed.CircularArray()
	fe := radio.NewFrontEnd(arr, testbed.AP1, rng.New(seed), radio.WithNoiseFloor(testbed.NoiseFloor))
	fmt.Println("Section 2.2 calibration: USRP2 reference tone through equal-length cables")
	fmt.Printf("%-8s %-16s %-16s %-12s\n", "chain", "true offset", "estimated", "error(rad)")
	est := fe.Calibrate(4000)
	for a := 0; a < arr.N(); a++ {
		truth := dsp.WrapPhase(fe.PhaseOffsets[a] - fe.PhaseOffsets[0])
		errRad := math.Abs(dsp.WrapPhase(est[a] - truth))
		fmt.Printf("%-8d %-16.4f %-16.4f %-12.2e\n", a+1, truth, est[a], errRad)
	}
	fmt.Println("\nOffsets subtracted from over-the-air captures restore the steering model of section 2.1.")
	return nil
}

// runTracks dials a running controller as a v2 observer session (an
// empty Hello name: never registered as a bearing source) and prints
// its live mobility traces — the wire face of the fusion engine's
// per-client alpha-beta tracks. An empty mac queries all. token
// authenticates the observer against a -require-auth controller (any
// enrolled AP's token works for an observer session).
func runTracks(addr, mac, token string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	a, err := netproto.DialContext(ctx, addr, netproto.Hello{Pos: geom.Point{}, Token: token})
	if err != nil {
		return err
	}
	defer a.Close()
	if a.Version() < netproto.ProtoV2 {
		return fmt.Errorf("controller at %s negotiated protocol v%d; tracks needs v2", addr, a.Version())
	}
	q := netproto.Query{All: mac == ""}
	if mac != "" {
		addr, err := wifi.ParseAddr(mac)
		if err != nil {
			return err
		}
		q.MAC = addr
	}
	states, err := a.QueryTracks(ctx, q)
	if err != nil {
		return err
	}
	if len(states) == 0 {
		fmt.Println("no live tracks")
		return nil
	}
	fmt.Printf("%-18s %-16s %-16s %6s %8s %8s %s\n", "MAC", "pos(m)", "vel(m/s)", "fixes", "lastSeq", "age", "fence")
	for _, ts := range states {
		fmt.Printf("%-18s %-16v %-16v %6d %8d %8s %s\n",
			ts.MAC, ts.Pos, ts.Vel, ts.Fixes, ts.LastSeq,
			time.Since(ts.Updated).Truncate(time.Millisecond), ts.Decision)
	}
	return nil
}

// runDefense dials a running controller as a v3 observer session and
// prints the defense engine's live threat states — the wire face of the
// closed defense loop. A non-empty mac filters to one client; release
// instead asks the controller for an operator release of that MAC.
// token authenticates against a -require-auth controller.
func runDefense(addr, mac string, release bool, token string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	a, err := netproto.DialContext(ctx, addr, netproto.Hello{Pos: geom.Point{}, Token: token})
	if err != nil {
		return err
	}
	defer a.Close()
	if a.Version() < netproto.ProtoV3 {
		return fmt.Errorf("controller at %s negotiated protocol v%d; defense needs v3", addr, a.Version())
	}
	if release {
		if mac == "" {
			return fmt.Errorf("defense -release needs -mac")
		}
		addr, err := wifi.ParseAddr(mac)
		if err != nil {
			return err
		}
		if err := a.SendRelease(addr); err != nil {
			return err
		}
		fmt.Printf("release of %s requested\n", addr)
		return nil
	}
	q := netproto.Query{All: mac == ""}
	if mac != "" {
		addr, err := wifi.ParseAddr(mac)
		if err != nil {
			return err
		}
		q.MAC = addr
	}
	states, err := a.QueryThreats(ctx, q)
	if err != nil {
		return err
	}
	if len(states) == 0 {
		fmt.Println("no tracked threats")
		return nil
	}
	fmt.Printf("%-18s %-10s %-10s %6s %6s %6s %6s %8s %-10s %s\n",
		"MAC", "state", "action", "score", "flags", "drops", "speed", "bearing", "by", "age")
	for _, st := range states {
		fmt.Printf("%-18s %-10s %-10s %6.2f %6d %6d %6d %8.1f %-10s %s\n",
			st.MAC, st.State, st.Action, st.Score, st.Flags, st.FenceDrops, st.SpeedFlags,
			st.BearingDeg, st.LastAP, time.Since(st.Updated).Truncate(time.Millisecond))
	}
	return nil
}

// serveOptions carries `serve`/`record`'s knobs.
type serveOptions struct {
	addr, journalDir, opsAddr string
	requireAuth               bool
	// partitions shards the controller core by MAC range (1 = the
	// monolithic layout, byte-compatible with earlier releases).
	partitions int
	// segmentBytes / snapshotEvery tune the flight recorder (zero =
	// package defaults; negative snapshotEvery disables snapshots).
	segmentBytes  int64
	snapshotEvery time.Duration
	// pprof mounts /debug/pprof on the ops endpoint.
	pprof bool
	// logLevel is the controller logger's minimum level ("debug",
	// "info", "warn", "error"; empty = info).
	logLevel string
}

// runServe runs the fence controller; a non-empty journalDir turns on
// the flight recorder (the `record` command path): state is recovered
// from the directory before listening, and every decision-relevant
// event is journalled from then on. A non-empty opsAddr serves the
// operations endpoint (/metrics, /status, /enroll); requireAuth makes
// enrollment tokens mandatory for every new session.
func runServe(o serveOptions) error {
	_, shell := testbed.Building()
	fence := &locate.Fence{Boundary: shell}
	c := netproto.NewController(fence)
	c.RequireAuth = o.requireAuth
	c.PprofOps = o.pprof
	if o.partitions > 0 {
		c.Partitions = o.partitions
	}
	if o.snapshotEvery != 0 {
		c.SnapshotInterval = o.snapshotEvery
	}
	// Controller log lines go through the leveled key=value logger:
	// timestamped, level-tagged, and carrying the mac=/ap=/trace=
	// fields `secureangle incident` timelines join against.
	logger := ops.NewLogger(os.Stdout)
	logger.SetLevel(ops.ParseLevel(o.logLevel))
	c.Logf = logger.Printf
	if o.journalDir != "" {
		opts := journal.Options{SegmentBytes: o.segmentBytes, Logf: c.Logf}
		if err := c.WithJournalDir(o.journalDir, opts); err != nil {
			return err
		}
		fmt.Printf("flight recorder journalling to %s (%d partition(s), fsync policy: interval)\n",
			o.journalDir, c.Partitions)
	}
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	fmt.Printf("fence controller listening on %s (boundary: building shell)\n", ln.Addr())
	c.Serve(ln)
	if o.opsAddr != "" {
		oln, err := net.Listen("tcp", o.opsAddr)
		if err != nil {
			c.Close()
			return err
		}
		c.ServeOps(oln)
		auth := "optional"
		if o.requireAuth {
			auth = "required"
		}
		fmt.Printf("ops endpoint on http://%s (/metrics /status /enroll; auth %s)\n", oln.Addr(), auth)
	}

	sub := c.Subscribe(64)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Println("\nshutting down")
		c.Close()
	}()
	for d := range sub.C {
		fmt.Printf("decision: %s seq %d -> %s at %v (APs %v)\n", d.MAC, d.SeqNo, d.Decision, d.Pos, d.APs)
	}
	return nil
}

// runLoadgen hammers a running controller with synthetic traffic: two
// AP identities reporting bearings for a MAC population spread across
// the whole address space (so every partition sees work), plus a spoof
// alert sprinkled in every few hundred reports. A connection that dies
// mid-run is reported but is not an error — the journal torture
// harness kills the controller out from under us on purpose.
func runLoadgen(addr, token string, duration time.Duration, rate int) error {
	if rate <= 0 {
		rate = 2000
	}
	ctx, cancel := context.WithTimeout(context.Background(), duration+10*time.Second)
	defer cancel()
	ap1Pos, ap2Pos := testbed.AP1, testbed.AP2
	ag1, err := netproto.DialContext(ctx, addr, netproto.Hello{Name: "loadgen-ap1", Pos: ap1Pos, Token: token})
	if err != nil {
		return err
	}
	defer ag1.Close()
	ag2, err := netproto.DialContext(ctx, addr, netproto.Hello{Name: "loadgen-ap2", Pos: ap2Pos, Token: token})
	if err != nil {
		return err
	}
	defer ag2.Close()

	_, shell := testbed.Building()
	center := shell.Centroid()
	deadline := time.Now().Add(duration)
	tick := time.NewTicker(time.Second / time.Duration(rate))
	defer tick.Stop()
	var sent uint64
	for time.Now().Before(deadline) {
		<-tick.C
		sent++
		// Spread the high-order MAC bits so a partitioned controller
		// journals into every partition.
		mac := wifi.Addr{byte(sent * 0x9e), byte(sent >> 8), byte(sent >> 16), 0, 0, byte(sent)}
		target := geom.Point{
			X: center.X + float64(int(sent%17)-8),
			Y: center.Y + float64(int(sent%11)-5),
		}
		// One trace per synthetic transmission: both AP identities
		// report the same packet, so they share the ID (what a real
		// fleet converges to once every AP mints from the same packet).
		tr := trace.NextID()
		if err := ag1.Send(netproto.Report{APName: "loadgen-ap1", MAC: mac, SeqNo: sent, BearingDeg: geom.BearingDeg(ap1Pos, target), Trace: tr}); err != nil {
			fmt.Printf("loadgen: connection lost after %d reports: %v\n", sent, err)
			return nil
		}
		if err := ag2.Send(netproto.Report{APName: "loadgen-ap2", MAC: mac, SeqNo: sent, BearingDeg: geom.BearingDeg(ap2Pos, target), Trace: tr}); err != nil {
			fmt.Printf("loadgen: connection lost after %d reports: %v\n", sent, err)
			return nil
		}
		if sent%200 == 0 {
			if err := ag1.SendAlertDetail(netproto.Alert{
				APName: "loadgen-ap1", MAC: mac, Distance: 0.9, Threshold: 0.12,
				BearingDeg: geom.BearingDeg(ap1Pos, target), HasBearing: true, Stage: "spoofcheck",
				Trace: tr,
			}); err != nil {
				fmt.Printf("loadgen: connection lost after %d reports: %v\n", sent, err)
				return nil
			}
		}
	}
	fmt.Printf("loadgen: sent %d report pairs in %v\n", sent, duration)
	return nil
}

// runDemo wires two simulated APs to a controller over loopback TCP,
// pushes one inside client and one outside intruder through the fence,
// then closes the defense loop: a spoof alert from ap1 becomes a
// null-steer directive that ap2 applies with real beamforming weights.
func runDemo(seed int64) error {
	environment, shell := testbed.Building()
	fence := &locate.Fence{Boundary: shell}
	c := netproto.NewController(fence)
	// Escalate straight to null-steer on the first flagged packet, so
	// the demo shows the strongest countermeasure.
	c.DefensePolicy = defense.Policy{NullSteerScore: 2}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	c.Serve(ln)
	defer c.Close()
	sub := c.Subscribe(16)
	fmt.Printf("controller on %s\n", ln.Addr())

	apPos := []geom.Point{testbed.AP1, testbed.AP2}
	agents := make([]*netproto.Agent, len(apPos))
	bearingsFor := func(target geom.Point) []float64 {
		out := make([]float64, len(apPos))
		for i, p := range apPos {
			out[i] = geom.BearingDeg(p, target)
		}
		return out
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i, pos := range apPos {
		name := fmt.Sprintf("ap%d", i+1)
		a, err := netproto.DialContext(ctx, ln.Addr().String(), netproto.Hello{Name: name, Pos: pos})
		if err != nil {
			return err
		}
		fmt.Printf("%s connected (protocol v%d)\n", name, a.Version())
		defer a.Close()
		agents[i] = a
	}

	send := func(seq uint64, clientID int, target geom.Point, label string) error {
		tr := trace.NextID()
		fmt.Printf("transmission %d: %s at %v (trace %016x)\n", seq, label, target, tr)
		bs := bearingsFor(target)
		for i, a := range agents {
			if err := a.Send(netproto.Report{
				APName: fmt.Sprintf("ap%d", i+1), MAC: testbed.ClientMAC(clientID),
				SeqNo: seq, BearingDeg: bs[i], Trace: tr,
			}); err != nil {
				return err
			}
		}
		d := <-sub.C
		fmt.Printf("  -> %s (located %v)\n", d.Decision, d.Pos)
		return nil
	}

	five, err := testbed.ClientByID(5)
	if err != nil {
		return err
	}
	if err := send(1, 5, five.Pos, "client 5 (inside)"); err != nil {
		return err
	}
	if err := send(2, 99, testbed.OutsidePositions()[0], "intruder (outside)"); err != nil {
		return err
	}

	// The controller kept alpha-beta mobility tracks for both clients;
	// pull them over the wire with the v2 Query/Tracks exchange.
	states, err := agents[0].QueryTracks(ctx, netproto.Query{All: true})
	if err != nil {
		return err
	}
	fmt.Println("live controller tracks:")
	for _, ts := range states {
		fmt.Printf("  %s at %v (fixes %d, fence %s)\n", ts.MAC, ts.Pos, ts.Fixes, ts.Decision)
	}

	// Close the loop: ap1 flags the intruder's MAC as spoofed; the
	// defense engine escalates and broadcasts a directive; ap2 — a real
	// pipeline AP with the paper's circular array — applies null-steer
	// weights toward the threat and acks the applied countermeasure.
	dirCh := agents[1].Directives()
	ap2 := core.NewAP("ap2", testbed.NewAPFrontEnd(testbed.CircularArray(), apPos[1], rng.New(seed+1)), environment, core.DefaultConfig())
	intruderMAC := testbed.ClientMAC(99)
	alertTrace := trace.NextID()
	fmt.Printf("\nap1 flags %s as spoofed (signature distance 0.9 vs threshold 0.12, trace %016x)\n", intruderMAC, alertTrace)
	if err := agents[0].SendAlertDetail(netproto.Alert{
		APName: "ap1", MAC: intruderMAC, Distance: 0.9, Threshold: 0.12,
		BearingDeg: bearingsFor(testbed.OutsidePositions()[0])[0], HasBearing: true, Stage: "spoofcheck",
		Trace: alertTrace,
	}); err != nil {
		return err
	}
	select {
	case d := <-dirCh:
		fmt.Printf("ap2 received directive: %s %s (score %.2f, reported by %s)\n", d.Action, d.MAC, d.Score, d.Reporter)
		cm, err := ap2.ApplyDirective(d.Directive)
		if err != nil {
			return err
		}
		if cm.Weights != nil {
			fmt.Printf("ap2 applied null-steer: %.1f dB toward threat bearing %.1f, %.1f dB toward serve bearing %.1f\n",
				beamform.GainDB(ap2.FE.Array, cm.Weights, cm.NullBearingDeg), cm.NullBearingDeg,
				beamform.GainDB(ap2.FE.Array, cm.Weights, cm.ServeBearingDeg), cm.ServeBearingDeg)
		}
		if err := agents[1].SendDirectiveAck(d.Directive); err != nil {
			return err
		}
	case <-ctx.Done():
		return ctx.Err()
	}

	// The threat table over the wire, then the operator release path.
	threats, err := agents[0].QueryThreats(ctx, netproto.Query{All: true})
	if err != nil {
		return err
	}
	fmt.Println("live threat states:")
	for _, st := range threats {
		fmt.Printf("  %s %s (action %s, score %.2f)\n", st.MAC, st.State, st.Action, st.Score)
	}
	c.Release(intruderMAC)
	fmt.Printf("operator released %s (quarantine also decays on its own after the policy TTL)\n", intruderMAC)
	return nil
}

// runJournalReplay re-runs a recorded incident offline under a
// (possibly counterfactual) DefensePolicy and prints the directive
// sequence the fleet would have seen — "what if QuarantineScore were
// lower?" answered from the journal instead of a production experiment.
func runJournalReplay(dir string, quarantineScore float64, halfLife, tail time.Duration) error {
	_, shell := testbed.Building()
	policy := defense.Policy{QuarantineScore: quarantineScore, HalfLife: halfLife}
	// Keep the policy self-consistent when the knob is pushed past the
	// dependent defaults in either direction: Validate requires
	// ReleaseScore < MonitorScore <= QuarantineScore <= NullSteerScore.
	if quarantineScore > defense.DefaultNullSteerScore {
		policy.NullSteerScore = quarantineScore
	}
	if quarantineScore > 0 && quarantineScore <= defense.DefaultMonitorScore {
		policy.MonitorScore = quarantineScore / 2
		policy.ReleaseScore = quarantineScore / 4
	}
	res, err := journal.Replay(dir, journal.ReplayOptions{
		Fence:  &locate.Fence{Boundary: shell},
		Policy: policy,
		Tail:   tail,
	})
	if err != nil {
		return err
	}
	fmt.Printf("replayed %d reports, %d alerts, %d releases -> %d fence decisions (through LSN %d)\n",
		res.Reports, res.Alerts, res.Releases, res.Decisions, res.LastLSN)
	fmt.Printf("recorded policy emitted %d directives; replayed policy emitted %d:\n",
		len(res.RecordedDirectives), len(res.Directives))
	for _, rd := range res.Directives {
		d := rd.Directive
		fmt.Printf("  %s  after LSN %-6d %s %s -> %s (action %s, score %.2f, by %s)\n",
			rd.TS.Format("15:04:05.000"), rd.AfterLSN, d.MAC, d.From, d.To, d.Action, d.Score, d.Reporter)
	}
	if len(res.Quarantined) > 0 {
		fmt.Println("still quarantined at end of replay:")
		for _, st := range res.Quarantined {
			fmt.Printf("  %s (score %.2f, since %s)\n", st.MAC, st.Score, st.Since.Format("15:04:05.000"))
		}
	}
	return nil
}

func runAll(seed int64, packets int) error {
	steps := []struct {
		name string
		fn   func() error
	}{
		{"fig5", func() error { return runFig5(seed, packets) }},
		{"fig6", func() error { return runFig6(seed, false) }},
		{"fig7", func() error { return runFig7(seed, false) }},
		{"accuracy", func() error { return runAccuracy(seed, packets) }},
		{"fence", func() error { return runFence(seed) }},
		{"spoof", func() error { return runSpoof(seed, packets) }},
		{"ablation", func() error { return runAblation(seed) }},
		{"interference", func() error { return runInterference(seed) }},
		{"snr", func() error { return runSNR(seed, packets) }},
		{"track", func() error { return runTrack(seed) }},
		{"beamform", func() error { return runBeamform(seed) }},
	}
	for _, s := range steps {
		fmt.Printf("\n===== %s =====\n", s.name)
		if err := s.fn(); err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
	}
	return nil
}
