package main

import (
	"fmt"

	"secureangle/internal/core"
	"secureangle/internal/iqfile"
	"secureangle/internal/ofdm"
	"secureangle/internal/rng"
	"secureangle/internal/testbed"
)

// runCapture simulates one uplink packet from a client arriving at AP1's
// eight antennas and writes the raw (uncalibrated) I/Q streams to a SAIQ
// file — the WARP buffer-and-ship workflow of section 3 in file form. The
// calibration offsets are stored alongside so replay can apply them.
func runCapture(seed int64, clientID int, out string) error {
	e, _ := testbed.Building()
	fe := testbed.NewAPFrontEnd(testbed.CircularArray(), testbed.AP1, rng.New(seed))
	c, err := testbed.ClientByID(clientID)
	if err != nil {
		return err
	}
	bb, err := testbed.FrameBaseband(testbed.UplinkFrame(clientID, 1, []byte("capture")), ofdm.QPSK)
	if err != nil {
		return err
	}
	streams, err := fe.Receive(e, c.Pos, bb)
	if err != nil {
		return err
	}
	cap := &iqfile.Capture{SampleRate: fe.SampleRate, Streams: streams}
	if err := iqfile.Save(out, cap); err != nil {
		return err
	}
	// A second file holds the calibration capture so replay can derive
	// the offsets the same way the live pipeline does.
	calCap := &iqfile.Capture{SampleRate: fe.SampleRate, Streams: fe.CalibrationCapture(2000)}
	if err := iqfile.Save(out+".cal", calCap); err != nil {
		return err
	}
	fmt.Printf("captured client %d: %d channels x %d samples -> %s (+.cal)\n",
		clientID, len(streams), len(streams[0]), out)
	fmt.Printf("ground-truth bearing: %.1f deg\n", testbed.GroundTruth(testbed.AP1, c.Pos))
	return nil
}

// runReplay loads a SAIQ capture (plus its calibration sidecar) and runs
// the full offline pipeline on it.
func runReplay(in string) error {
	cap, err := iqfile.Load(in)
	if err != nil {
		return err
	}
	calCap, err := iqfile.Load(in + ".cal")
	if err != nil {
		return fmt.Errorf("calibration sidecar: %w", err)
	}

	// Rebuild an AP around the recorded calibration: estimate offsets
	// from the sidecar capture and process the recorded streams.
	e, _ := testbed.Building()
	fe := testbed.NewAPFrontEnd(testbed.CircularArray(), testbed.AP1, rng.New(0))
	ap := core.NewAPFromCapture("replay", fe, e, core.DefaultConfig(), calCap.Streams)
	rep, err := ap.ProcessStreams(cap.Streams)
	if err != nil {
		return err
	}
	fmt.Printf("replayed %s: %d channels x %d samples @ %.0f MHz\n",
		in, len(cap.Streams), len(cap.Streams[0]), cap.SampleRate/1e6)
	fmt.Printf("bearing %.1f deg, detection metric %.2f, sources %d, SNR %.1f dB\n",
		rep.BearingDeg, rep.Detection.Metric, rep.Sources, rep.SNRdB)
	for _, p := range rep.Spectrum.Peaks(10, 15) {
		fmt.Printf("  peak %6.1f deg  %6.1f dB\n", p.BearingDeg, p.RelDB)
	}
	return nil
}
