package main

// The fleet-operations CLI face: `status` renders a running
// controller's /status document as tables, `enroll` drives the token
// mint/list/revoke flow over the same ops HTTP endpoint.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"secureangle/internal/netproto"
)

// defaultOpsAddr is where `status` and `enroll` look for a controller's
// ops endpoint when -ops is not given, matching the `serve -ops` docs.
const defaultOpsAddr = "127.0.0.1:7118"

func opsTarget(addr string) string {
	if addr == "" {
		return defaultOpsAddr
	}
	return addr
}

func opsGet(addr, path string, out any) error {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + addr + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("GET %s: %s: %s", path, resp.Status, body)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// runStatus fetches /status from a controller's ops endpoint and
// renders the operator's view: fusion and defense counters, journal
// position, per-AP health, and the live threat table. watch > 0
// re-fetches and re-renders every watch seconds until interrupted
// (`secureangle status -watch 2`, the poor operator's dashboard).
func runStatus(addr string, watch int) error {
	if watch <= 0 {
		return renderStatus(addr)
	}
	for {
		// Clear the screen and home the cursor between renders, like
		// watch(1); a fetch error is printed and retried, not fatal —
		// the controller may be mid-restart.
		fmt.Print("\x1b[2J\x1b[H")
		if err := renderStatus(addr); err != nil {
			fmt.Println(err)
		}
		time.Sleep(time.Duration(watch) * time.Second)
	}
}

func renderStatus(addr string) error {
	var st netproto.Status
	if err := opsGet(addr, "/status", &st); err != nil {
		return fmt.Errorf("is the controller running with -ops %s? %w", addr, err)
	}
	auth := "optional"
	if st.AuthRequired {
		auth = "required"
	}
	fmt.Printf("controller at %s — protocol v%d, auth %s, %d enrolled AP(s)\n",
		addr, st.Proto, auth, len(st.Enrolled))

	f := st.Fusion
	fmt.Printf("\nfusion: %d ingested, %d decisions, %d dup dropped, %d forced timeouts; %d clients, %d pending, %d shards\n",
		f.Ingested, f.Decisions, f.DupDropped, f.ForcedTimeouts, f.Clients, f.Pending, len(f.Shards))
	fmt.Printf("        expired %d pending; evicted %d pending, %d clients; %d fuse errors\n",
		f.PendingExpired, f.PendingEvicted, f.ClientsEvicted, f.FuseErrors)

	d := st.Defense
	fmt.Printf("defense: verdicts %d spoof / %d fence / %d track; %d quarantines, %d null-steers, %d directives (%d acked), %d releases; clients %d allow / %d monitor / %d quarantine\n",
		d.SpoofVerdicts, d.FenceVerdicts, d.TrackVerdicts, d.Quarantines, d.NullSteers,
		d.Directives, st.DirectiveAcks, d.Releases, d.Allow, d.Monitor, d.Quarantine)

	if st.Journal != nil {
		j := st.Journal
		snap := "never"
		if !j.SnapshotAt.IsZero() {
			snap = fmt.Sprintf("%s ago (LSN %d)", time.Since(j.SnapshotAt).Truncate(time.Second), j.SnapshotLSN)
		}
		fmt.Printf("journal: LSN %d, %d appends (%d bytes), %d fsyncs, %d segments, snapshot %s\n",
			j.LSN, j.Appends, j.AppendedBytes, j.Fsyncs, j.Segments, snap)
	} else {
		fmt.Println("journal: off")
	}

	if st.Partitions > 1 {
		fmt.Printf("partitions: %d (MAC-range sharded core)\n", st.Partitions)
		if len(st.JournalPartitions) > 1 {
			fmt.Printf("  %-4s %10s %10s %9s %8s %12s\n", "part", "LSN", "appends", "fsyncs", "segments", "snapshot LSN")
			for i, p := range st.JournalPartitions {
				fmt.Printf("  p%-3d %10d %10d %9d %8d %12d\n",
					i, p.LSN, p.Appends, p.Fsyncs, p.Segments, p.SnapshotLSN)
			}
		}
	}

	if len(st.Replication) > 0 {
		fmt.Println("\nreplicas:")
		for _, r := range st.Replication {
			name := r.Name
			if name == "" {
				name = "(standby)"
			}
			fmt.Printf("  %-14s max lag %d\n", name, r.MaxLag)
			for _, p := range r.Partitions {
				fmt.Printf("    p%-3d sent LSN %d, acked LSN %d, lag %d\n",
					p.Partition, p.SentLSN, p.AckedLSN, p.Lag)
			}
		}
	}

	if len(st.APs) == 0 {
		fmt.Println("\nno connected APs")
	} else {
		fmt.Printf("\n%-14s %3s %5s %8s %8s %6s %6s %10s %12s\n",
			"AP", "ver", "queue", "frames", "reports", "acks", "role", "last seen", "ack latency")
		for _, h := range st.APs {
			role := "ap"
			if h.Observer {
				role = "obs"
			}
			lat := "-"
			if h.AckLatency > 0 {
				lat = h.AckLatency.Truncate(time.Microsecond).String()
			}
			fmt.Printf("%-14s %3d %5d %8d %8d %6d %6s %10s %12s\n",
				h.Name, h.Version, h.QueueDepth, h.Frames, h.Reports, h.Acks, role,
				time.Since(h.LastSeen).Truncate(time.Millisecond), lat)
		}
	}

	if len(st.Threats) == 0 {
		fmt.Println("no active threats")
	} else {
		fmt.Printf("\n%-18s %-10s %-10s %6s %-10s %s\n", "MAC", "state", "action", "score", "by", "age")
		for _, th := range st.Threats {
			fmt.Printf("%-18s %-10s %-10s %6.2f %-10s %s\n",
				th.MAC, th.State, th.Action, th.Score, th.LastAP,
				time.Since(th.Updated).Truncate(time.Millisecond))
		}
	}
	return nil
}

// runEnroll drives the controller's token admin endpoint. With no name
// it lists enrolled APs; with a name it mints (or, with -revoke,
// revokes) that AP's token. Re-enrolling an existing name rotates the
// token: the old one stops validating immediately.
func runEnroll(addr, name string, revoke bool) error {
	client := &http.Client{Timeout: 5 * time.Second}
	if name == "" {
		if revoke {
			return fmt.Errorf("enroll -revoke needs an AP name")
		}
		var listed struct{ Enrolled []string }
		if err := opsGet(addr, "/enroll", &listed); err != nil {
			return fmt.Errorf("is the controller running with -ops %s? %w", addr, err)
		}
		if len(listed.Enrolled) == 0 {
			fmt.Println("no enrolled APs")
			return nil
		}
		for _, n := range listed.Enrolled {
			fmt.Println(n)
		}
		return nil
	}
	q := url.Values{"name": {name}}
	if revoke {
		q.Set("revoke", "1")
	}
	resp, err := client.Post("http://"+addr+"/enroll?"+q.Encode(), "", nil)
	if err != nil {
		return fmt.Errorf("is the controller running with -ops %s? %w", addr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("enroll: %s: %s", resp.Status, body)
	}
	if revoke {
		fmt.Printf("revoked %s; its next handshake will be rejected\n", name)
		return nil
	}
	var minted struct{ Name, Token string }
	if err := json.NewDecoder(resp.Body).Decode(&minted); err != nil {
		return err
	}
	fmt.Printf("enrolled %s\ntoken: %s\n\nstart the AP agent with this token (Hello.Token, or tracks/defense -token).\nRe-running enroll rotates it; `enroll -revoke %s` revokes it.\n",
		minted.Name, minted.Token, minted.Name)
	return nil
}
