package main

// `secureangle incident` — offline incident forensics: reconstruct one
// client's (or one trace's) report → verdict → score-crossing →
// directive → ack → release timeline, with inter-stage latencies, from
// a journal directory alone. Works against a live controller's journal
// tree, a compacted one, or a standby's replicated copy — no running
// controller required.

import (
	"fmt"
	"strconv"

	"secureangle/internal/journal"
	"secureangle/internal/wifi"
)

func runIncident(dir, macStr, traceStr string) error {
	if dir == "" {
		return fmt.Errorf("incident needs -journal DIR (the controller's journal directory)")
	}
	if macStr == "" && traceStr == "" {
		return fmt.Errorf("incident needs -mac aa:bb:cc:dd:ee:ff or -trace <16-hex-digit id>")
	}
	var q journal.IncidentQuery
	if macStr != "" {
		mac, err := wifi.ParseAddr(macStr)
		if err != nil {
			return err
		}
		q.MAC, q.HasMAC = mac, true
	}
	if traceStr != "" {
		id, err := strconv.ParseUint(traceStr, 16, 64)
		if err != nil {
			return fmt.Errorf("bad -trace %q: want a 16-hex-digit trace ID", traceStr)
		}
		q.Trace = id
	}
	inc, err := journal.ReconstructIncident(dir, q)
	if err != nil {
		return err
	}
	fmt.Print(inc.Render())
	return nil
}
