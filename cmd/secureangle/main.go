// Command secureangle regenerates every artefact of the SecureAngle paper
// (HotNets 2010) from the simulated Figure 4 testbed and runs the
// system's services.
//
// Usage:
//
//	secureangle fig5       — Figure 5: bearing accuracy for 20 clients (circular array)
//	secureangle fig6       — Figure 6: signature stability over a day (linear array)
//	secureangle fig7       — Figure 7: pseudospectrum vs antenna count (client 12)
//	secureangle accuracy   — section 2.3.1 single-packet accuracy claim
//	secureangle fence      — virtual fence: 3-AP localisation + allow/drop table
//	secureangle spoof      — address spoofing prevention + RSS baseline comparison
//	secureangle ablation   — estimator / calibration / covariance ablations
//	secureangle calibrate  — the section 2.2 calibration procedure, narrated
//	secureangle serve      — run the fence controller on a TCP port (-journal enables the flight recorder, -ops the operations endpoint, -partitions shards the core)
//	secureangle record     — serve with the flight recorder on (journal defaults to ./secureangle-journal)
//	secureangle standby    — follow a leader's journal stream as a warm replica (-promote flips a running standby live)
//	secureangle loadgen    — hammer a running controller with synthetic report/alert traffic
//	secureangle status     — render a running controller's /status document (-watch N re-renders every N seconds)
//	secureangle incident   — reconstruct a client's decision timeline from a journal directory (-mac or -trace)
//	secureangle enroll     — mint, list, rotate, or -revoke per-AP enrollment tokens on a running controller
//	secureangle tracks     — query a running controller's live mobility traces
//	secureangle defense    — query a controller's threat states (or -release a MAC)
//	secureangle demo       — end-to-end demo: APs + controller + defense loop over loopback TCP
//	secureangle all        — every experiment in sequence (EXPERIMENTS.md input)
//
// Flags: -seed N (default 1), -packets N (per-client packet count where
// applicable), -listen addr (serve), -spectra (fig6/fig7: dump full
// pseudospectra series as TSV for plotting).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	seed := fs.Int64("seed", 1, "experiment RNG seed")
	packets := fs.Int("packets", 10, "packets per client where applicable")
	listen := fs.String("listen", "127.0.0.1:7117", "controller listen address")
	spectra := fs.Bool("spectra", false, "dump full pseudospectra as TSV")
	client := fs.Int("client", 5, "testbed client ID for capture")
	file := fs.String("file", "capture.saiq", "I/Q capture path")
	macFlag := fs.String("mac", "", "client MAC to query (tracks/defense/incident; empty = all)")
	traceFlag := fs.String("trace", "", "incident: filter by 16-hex-digit trace ID")
	watchFlag := fs.Int("watch", 0, "status: re-render every N seconds until interrupted")
	logLevel := fs.String("log-level", "info", "serve/record: minimum controller log level (debug, info, warn, error)")
	releaseFlag := fs.Bool("release", false, "defense: request an operator release of -mac")
	journalFlag := fs.String("journal", "", "journal directory (record/replay; serve: optional)")
	opsAddr := fs.String("ops", "", "ops HTTP address: serve/record listen for /metrics, /status, /enroll (empty = off); status/enroll target (empty = "+defaultOpsAddr+")")
	pprofFlag := fs.Bool("pprof", false, "serve/record/standby: mount /debug/pprof (CPU, heap, mutex profiles) on the ops endpoint")
	requireAuth := fs.Bool("require-auth", false, "serve/record: require enrollment tokens from agents")
	tokenFlag := fs.String("token", "", "enrollment token presented by tracks/defense observer sessions")
	revokeFlag := fs.Bool("revoke", false, "enroll: revoke the named AP's token instead of minting one")
	qscore := fs.Float64("quarantine-score", 0, "replay: counterfactual DefensePolicy.QuarantineScore (0 = default)")
	halfLife := fs.Duration("half-life", 0, "replay: counterfactual DefensePolicy.HalfLife (0 = default)")
	tail := fs.Duration("tail", 0, "replay: extra simulated time after the last record")
	partitions := fs.Int("partitions", 1, "serve/record: MAC-range controller partitions")
	segBytes := fs.Int64("segment-bytes", 0, "serve/record/standby: journal segment size in bytes (0 = default)")
	snapEvery := fs.Duration("snapshot-every", 0, "serve/record/standby: snapshot cadence (0 = default, negative = off)")
	leaderFlag := fs.String("leader", "", "standby: leader controller address to follow")
	promoteFlag := fs.Bool("promote", false, "standby: promote a running standby via its ops endpoint and exit")
	promoteAfter := fs.Duration("promote-after", 0, "standby: auto-promote after this much leader silence (0 = manual only)")
	durationFlag := fs.Duration("duration", 3*time.Second, "loadgen: how long to generate load")
	rateFlag := fs.Int("rate", 2000, "loadgen: reports per second")
	fs.Parse(os.Args[2:])

	var err error
	switch cmd {
	case "fig5":
		err = runFig5(*seed, *packets)
	case "fig6":
		err = runFig6(*seed, *spectra)
	case "fig7":
		err = runFig7(*seed, *spectra)
	case "accuracy":
		err = runAccuracy(*seed, *packets)
	case "fence":
		err = runFence(*seed)
	case "spoof":
		err = runSpoof(*seed, *packets)
	case "ablation":
		err = runAblation(*seed)
	case "track":
		err = runTrack(*seed)
	case "beamform":
		err = runBeamform(*seed)
	case "interference":
		err = runInterference(*seed)
	case "snr":
		err = runSNR(*seed, *packets)
	case "map":
		fmt.Print(testbedMap())
	case "capture":
		err = runCapture(*seed, *client, *file)
	case "replay":
		if *journalFlag != "" {
			err = runJournalReplay(*journalFlag, *qscore, *halfLife, *tail)
		} else {
			err = runReplay(*file)
		}
	case "calibrate":
		err = runCalibrate(*seed)
	case "serve":
		err = runServe(serveOptions{
			addr: *listen, journalDir: *journalFlag, opsAddr: *opsAddr,
			requireAuth: *requireAuth, partitions: *partitions,
			segmentBytes: *segBytes, snapshotEvery: *snapEvery, pprof: *pprofFlag,
			logLevel: *logLevel,
		})
	case "record":
		dir := *journalFlag
		if dir == "" {
			dir = "secureangle-journal"
		}
		err = runServe(serveOptions{
			addr: *listen, journalDir: dir, opsAddr: *opsAddr,
			requireAuth: *requireAuth, partitions: *partitions,
			segmentBytes: *segBytes, snapshotEvery: *snapEvery, pprof: *pprofFlag,
			logLevel: *logLevel,
		})
	case "standby":
		if *promoteFlag {
			err = runStandbyPromote(opsTarget(*opsAddr))
		} else {
			err = runStandby(standbyOptions{
				leader: *leaderFlag, dir: *journalFlag, token: *tokenFlag,
				listen: *listen, opsAddr: *opsAddr, requireAuth: *requireAuth,
				promoteAfter: *promoteAfter, segmentBytes: *segBytes,
				snapshotEvery: *snapEvery, pprof: *pprofFlag,
			})
		}
	case "loadgen":
		err = runLoadgen(*listen, *tokenFlag, *durationFlag, *rateFlag)
	case "status":
		err = runStatus(opsTarget(*opsAddr), *watchFlag)
	case "incident":
		err = runIncident(*journalFlag, *macFlag, *traceFlag)
	case "enroll":
		err = runEnroll(opsTarget(*opsAddr), fs.Arg(0), *revokeFlag)
	case "tracks":
		err = runTracks(*listen, *macFlag, *tokenFlag)
	case "defense":
		err = runDefense(*listen, *macFlag, *releaseFlag, *tokenFlag)
	case "demo":
		err = runDemo(*seed)
	case "all":
		err = runAll(*seed, *packets)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "secureangle: unknown command %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "secureangle %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `secureangle — SecureAngle (HotNets 2010) reproduction harness

experiments:
  fig5        Figure 5: measured vs ground-truth bearings, 20 clients
  fig6        Figure 6: AoA signature stability out to one day
  fig7        Figure 7: resolution vs number of antennas
  accuracy    section 2.3.1 single-packet accuracy claim
  fence       virtual fence with 3 APs (section 2.3.1 application)
  spoof       address spoofing prevention + RSS baseline (section 2.3.2)
  ablation    estimator / calibration / covariance-length ablations
  track       section 5 extension: mobility tracking with 3 APs
  beamform    section 5 extension: downlink MRT from uplink AoA
  interference concurrent transmitters resolved by the array
  snr         detection/error vs SNR robustness sweep
  map         ASCII floor plan of the Figure 4 testbed
  all         run everything above (generates EXPERIMENTS.md data)

services and demos:
  capture     record one packet's 8-channel I/Q to a SAIQ file
  replay      -journal dir: re-run a recorded incident under a counterfactual
              DefensePolicy (-quarantine-score, -half-life, -tail);
              otherwise run the offline pipeline on a SAIQ -file capture
  calibrate   narrate the section 2.2 phase-offset calibration
  serve       run the AoA fusion controller on -listen (-journal dir turns on the
              flight recorder; -ops addr serves /metrics, /status, /enroll;
              -require-auth demands enrollment tokens; -partitions N shards the
              core by MAC range; -segment-bytes / -snapshot-every tune the journal)
  record      serve with the flight recorder on (-journal defaults to ./secureangle-journal)
  standby     follow -leader as a warm replica: stream its journal into -journal,
              expose lag on -ops, auto-promote after -promote-after of silence
              (or "standby -promote -ops addr" to promote now), then serve -listen
  loadgen     hammer a running controller at -listen with synthetic reports and
              alerts (-rate per second, for -duration)
  status      render a running controller's /status (-ops targets its endpoint;
              -watch N re-renders every N seconds until interrupted)
  incident    reconstruct one client's decision timeline — report, verdict,
              directive, ack, release with inter-stage latencies — from a
              journal directory: "incident -journal dir -mac aa:bb:..." or
              -trace <16-hex id>; works on live, compacted, and standby journals
  enroll      "enroll ap1" mints (or rotates) ap1's token on a running controller;
              "enroll" alone lists enrollments; "enroll -revoke ap1" revokes
  tracks      query a running controller's live mobility traces (-mac filters, -token authenticates)
  defense     query a controller's defense threat states (-mac filters, -release frees a MAC, -token authenticates)
  demo        APs + controller + closed defense loop over loopback TCP

flags: -seed N   -packets N   -listen addr   -ops addr   -pprof   -require-auth   -token T   -revoke   -spectra   -client N   -file path   -mac aa:bb:cc:dd:ee:ff   -release   -journal dir   -quarantine-score X   -half-life D   -tail D
`)
}
