package secureangle

// Full-stack integration tests: the complete SecureAngle system — OFDM
// transmit, multipath channel, three AP pipelines, the TCP fusion
// protocol, the controller's virtual fence, and the spoofing registry —
// exercised together, the way the examples run it but with assertions.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"secureangle/internal/core"
	"secureangle/internal/geom"
	"secureangle/internal/locate"
	"secureangle/internal/netproto"
	"secureangle/internal/ofdm"
	"secureangle/internal/rng"
	"secureangle/internal/signature"
	"secureangle/internal/testbed"
)

func TestFullStackFenceOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack integration")
	}
	environment, shell := testbed.Building()
	controller := netproto.NewController(&locate.Fence{Boundary: shell, MarginM: 1.5})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	controller.Serve(ln)
	defer controller.Close()

	apPositions := []geom.Point{testbed.AP1, testbed.AP2, testbed.AP3}
	aps := make([]*core.AP, len(apPositions))
	agents := make([]*netproto.Agent, len(apPositions))
	for i, pos := range apPositions {
		name := fmt.Sprintf("ap%d", i+1)
		fe := testbed.NewAPFrontEnd(testbed.CircularArray(), pos, rng.New(int64(300+i)))
		aps[i] = core.NewAP(name, fe, environment, core.DefaultConfig())
		agents[i], err = netproto.Dial(ln.Addr().String(), netproto.Hello{Name: name, Pos: pos})
		if err != nil {
			t.Fatal(err)
		}
		defer agents[i].Close()
	}
	time.Sleep(50 * time.Millisecond) // let Hellos land before reports

	transmit := func(seq uint64, clientID int, pos geom.Point) (int, error) {
		frame := testbed.UplinkFrame(clientID, uint16(seq), []byte("integration"))
		bb, err := testbed.FrameBaseband(frame, ofdm.QPSK)
		if err != nil {
			return 0, err
		}
		heard := 0
		for i, ap := range aps {
			rep, err := ap.Observe(pos, bb)
			if err != nil {
				continue
			}
			if err := agents[i].Send(netproto.Report{
				APName: ap.Name, MAC: frame.Addr2, SeqNo: seq,
				BearingDeg: rep.BearingDeg, Sig: rep.Sig,
			}); err != nil {
				return 0, err
			}
			heard++
		}
		return heard, nil
	}
	awaitDecision := func() netproto.FenceDecision {
		select {
		case d := <-controller.Decisions():
			return d
		case <-time.After(10 * time.Second):
			t.Fatal("no decision within 10s")
			return netproto.FenceDecision{}
		}
	}

	// Inside clients from three rooms must be allowed and localised well.
	for seq, id := range map[uint64]int{1: 5, 2: 2, 3: 17} {
		c, err := testbed.ClientByID(id)
		if err != nil {
			t.Fatal(err)
		}
		heard, err := transmit(seq, id, c.Pos)
		if err != nil {
			t.Fatal(err)
		}
		if heard < 2 {
			t.Fatalf("client %d heard by %d APs", id, heard)
		}
		d := awaitDecision()
		if d.Decision != locate.Allow {
			t.Errorf("client %d dropped (located %v)", id, d.Pos)
		}
		if d.Pos.Dist(c.Pos) > 1.5 {
			t.Errorf("client %d localised %v m off", id, d.Pos.Dist(c.Pos))
		}
	}

	// The outside intruder is either unheard (fail closed) or dropped.
	intruder := testbed.OutsidePositions()[0]
	heard, err := transmit(9, 99, intruder)
	if err != nil {
		t.Fatal(err)
	}
	if heard >= 2 {
		d := awaitDecision()
		if d.Decision != locate.Drop {
			t.Errorf("intruder allowed at %v", d.Pos)
		}
	}
}

// TestFullStackV2StreamToController drives the v2 service path end to
// end: a Node's streaming handle feeds per-packet reports to a v2
// controller session (DialContext + SendBatchContext + Subscribe), and
// a spoof-flag PipelineError's stage crosses the wire on the alert
// path and lands in the controller's quarantine.
func TestFullStackV2StreamToController(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack integration")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	_, shell := testbed.Building()
	controller := netproto.NewController(&locate.Fence{Boundary: shell, MarginM: 1.5})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	controller.Serve(ln)
	defer controller.Close()
	sub := controller.Subscribe(16)
	defer controller.Unsubscribe(sub)

	// Two v2 nodes, each with its own agent session.
	positions := []Point{AP1, AP2}
	nodes := make([]*Node, len(positions))
	agents := make([]*netproto.Agent, len(positions))
	for i, pos := range positions {
		name := fmt.Sprintf("ap%d", i+1)
		n, err := New(WithName(name), WithPosition(pos), WithSeed(int64(500+i)), WithWorkers(2))
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		a, err := netproto.DialContext(ctx, ln.Addr().String(), netproto.Hello{Name: name, Pos: pos})
		if err != nil {
			t.Fatal(err)
		}
		if a.Version() != netproto.ProtoVersion {
			t.Fatalf("%s negotiated v%d", name, a.Version())
		}
		defer a.Close()
		agents[i] = a
	}

	// One transmission through each node's stream; reports ship as a
	// deadline-bounded batch.
	client, err := Client(5)
	if err != nil {
		t.Fatal(err)
	}
	item, err := TestbedBatchItem(client, 1)
	if err != nil {
		t.Fatal(err)
	}
	mac := testbed.ClientMAC(5)
	for i, n := range nodes {
		s := n.Stream(ctx, 4)
		if _, err := s.Submit(ctx, item); err != nil {
			t.Fatal(err)
		}
		var reports []netproto.Report
		done := make(chan struct{})
		go func() {
			defer close(done)
			for r := range s.Results() {
				if r.Err != nil {
					t.Errorf("node %d stream: %v", i, r.Err)
					continue
				}
				reports = append(reports, netproto.Report{
					APName: r.Report.AP, MAC: mac, SeqNo: 1,
					BearingDeg: r.Report.BearingDeg, Sig: r.Report.Sig,
				})
			}
		}()
		s.Close()
		<-done
		if err := agents[i].SendBatchContext(ctx, reports); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case d := <-sub.C:
		if d.Decision != locate.Allow {
			t.Errorf("inside client dropped: %+v", d)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no fused decision")
	}

	// The alert path: a deferred-calibration node fails with a typed
	// PipelineError whose stage rides the v2 alert to the controller.
	uncal, err := New(WithName("ap1"), WithPosition(AP1), WithDeferredCalibration())
	if err != nil {
		t.Fatal(err)
	}
	_, err = uncal.ObserveTestbedFrame(ctx, client.ID, client.Pos)
	var pe *PipelineError
	if !errors.As(err, &pe) || !errors.Is(err, ErrNotCalibrated) {
		t.Fatalf("expected ErrNotCalibrated PipelineError, got %v", err)
	}
	if err := agents[0].SendAlertDetail(netproto.Alert{
		APName: "ap1", MAC: mac, Distance: 0, Stage: pe.Stage,
	}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		q := controller.Quarantined()
		if len(q) == 1 {
			if q[0].Stage != core.StageCalibrate {
				t.Fatalf("quarantine stage %q, want %q", q[0].Stage, core.StageCalibrate)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("alert never reached the controller")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestFullStackSpoofAcrossReboots(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack integration")
	}
	// A client's signature survives AP restarts via serialisation: train,
	// marshal the stored signature, rebuild the AP, re-enroll, and the
	// attacker is still flagged while the client is still accepted.
	environment, _ := testbed.Building()
	fe := testbed.NewAPFrontEnd(testbed.CircularArray(), testbed.AP1, rng.New(400))
	ap := core.NewAP("ap1", fe, environment, core.DefaultConfig())

	victim, err := testbed.ClientByID(5)
	if err != nil {
		t.Fatal(err)
	}
	attacker, err := testbed.ClientByID(9)
	if err != nil {
		t.Fatal(err)
	}
	mac := testbed.ClientMAC(5)

	if _, err := ap.ProcessFrame(victim.Pos, testbed.UplinkFrame(5, 1, nil), ofdm.QPSK); err != nil {
		t.Fatal(err)
	}
	stored, ok := ap.StoredSignature(mac)
	if !ok {
		t.Fatal("no stored signature after training")
	}
	wire := stored.Marshal()

	// "Reboot": a brand-new AP instance on the same front end.
	ap2 := core.NewAP("ap1-rebooted", fe, environment, core.DefaultConfig())
	restored, err := signature.Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	ap2.Enroll(mac, restored)

	legit, err := ap2.ProcessFrame(victim.Pos, testbed.UplinkFrame(5, 2, nil), ofdm.QPSK)
	if err != nil {
		t.Fatal(err)
	}
	if legit.Decision != signature.Accept {
		t.Errorf("victim flagged after reboot (distance %v)", legit.Distance)
	}
	spoof, err := ap2.ProcessFrame(attacker.Pos, testbed.UplinkFrame(5, 3, nil), ofdm.QPSK)
	if err != nil {
		t.Fatal(err)
	}
	if spoof.Decision != signature.Flag {
		t.Errorf("attacker accepted after reboot (distance %v)", spoof.Distance)
	}
}

// TestFacadeControllerTracks drives the root facade's controller
// surface: NewController, fused FenceDecisions via Subscribe, the
// mobility TrackState accessors, and ControllerStats — all through the
// re-exported types, the way an external consumer would.
func TestFacadeControllerTracks(t *testing.T) {
	_, shell := testbed.Building()
	c := NewController(&Fence{Boundary: shell})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c.Serve(ln)
	defer c.Close()
	sub := c.Subscribe(8)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	apPos := []Point{AP1, AP2}
	agents := make([]*netproto.Agent, len(apPos))
	for i, pos := range apPos {
		agents[i], err = netproto.DialContext(ctx, ln.Addr().String(), netproto.Hello{
			Name: fmt.Sprintf("ap%d", i+1), Pos: pos,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer agents[i].Close()
	}

	mac := testbed.ClientMAC(7)
	var lastTarget Point
	for seq := uint64(1); seq <= 4; seq++ {
		lastTarget = Point{X: 8 + float64(seq), Y: 6}
		for i, a := range agents {
			if err := a.SendContext(ctx, netproto.Report{
				APName: fmt.Sprintf("ap%d", i+1), MAC: mac, SeqNo: seq,
				BearingDeg: geom.BearingDeg(apPos[i], lastTarget),
			}); err != nil {
				t.Fatal(err)
			}
		}
		var d FenceDecision
		select {
		case d = <-sub.C:
		case <-ctx.Done():
			t.Fatalf("no decision for seq %d", seq)
		}
		if d.Decision != locate.Allow {
			t.Errorf("seq %d: inside walker dropped", seq)
		}
	}

	var ts TrackState
	var ok bool
	if ts, ok = c.Track(mac); !ok {
		t.Fatal("facade Track missing")
	}
	if ts.Fixes != 4 || ts.LastSeq != 4 {
		t.Errorf("track %+v, want 4 fixes through seq 4", ts)
	}
	if ts.Pos.Dist(lastTarget) > 2 {
		t.Errorf("track position %v far from last fix %v", ts.Pos, lastTarget)
	}
	if snap := c.Snapshot(); len(snap) != 1 {
		t.Errorf("snapshot has %d tracks, want 1", len(snap))
	}
	var stats ControllerStats
	if stats = c.Stats(); stats.Decisions != 4 || stats.Ingested != 8 {
		t.Errorf("stats = %+v, want 4 decisions from 8 ingested", stats)
	}
}
