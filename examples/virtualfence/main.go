// Virtualfence: the section 2.3.1 application end to end, on the v2
// Node facade. Three nodes each run the full physical-layer pipeline on
// every transmission, stream their direct-path bearings to a fusion
// controller over loopback TCP, and the controller triangulates and
// applies the building-boundary fence: inside clients are allowed, an
// outside intruder's frames are dropped — and with the defense engine
// in the loop, repeated drops escalate the intruder into quarantine,
// broadcast to every AP as a typed directive.
//
//	go run ./examples/virtualfence
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"secureangle"
	"secureangle/internal/netproto"
	"secureangle/internal/ofdm"
	"secureangle/internal/testbed"
)

func main() {
	ctx := context.Background()

	// Controller with the building shell as the fence boundary. The 1.5 m
	// margin absorbs the localisation error of poorly-conditioned
	// geometries (an outside transmitter seen by two nearly-collinear
	// APs can triangulate just inside the wall). The defense policy
	// weighs a fence breach at twice the quarantine threshold, so a
	// single fused drop escalates — even a geometry-forced one, which
	// the engine discounts by half.
	_, shell := secureangle.Testbed()
	controller := secureangle.NewController(&secureangle.Fence{Boundary: shell, MarginM: 1.5})
	controller.DefensePolicy = secureangle.DefensePolicy{FenceWeight: 4}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	controller.Serve(ln)
	defer controller.Close()
	// v2 subscription API: any number of consumers can subscribe to the
	// fused decisions (the legacy Decisions() channel still works too).
	decisions := controller.Subscribe(16)
	defer controller.Unsubscribe(decisions)
	fmt.Printf("fence controller on %s\n\n", ln.Addr())

	// Three full nodes (array + calibration + MUSIC pipeline) on the v2
	// constructor, each with its own agent session to the controller.
	apPositions := []secureangle.Point{secureangle.AP1, secureangle.AP2, secureangle.AP3}
	nodes := make([]*secureangle.Node, len(apPositions))
	agents := make([]*netproto.Agent, len(apPositions))
	for i, pos := range apPositions {
		name := fmt.Sprintf("ap%d", i+1)
		nodes[i], err = secureangle.New(
			secureangle.WithName(name),
			secureangle.WithPosition(pos),
			secureangle.WithSeed(int64(100+i)),
		)
		if err != nil {
			log.Fatal(err)
		}
		// DialContext negotiates protocol v2 (versioned Hello/Welcome);
		// a v1 agent dialing the same controller still works.
		dialCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
		agents[i], err = netproto.DialContext(dialCtx, ln.Addr().String(), netproto.Hello{Name: name, Pos: pos})
		cancel()
		if err != nil {
			log.Fatal(err)
		}
		agents[i].Timeout = 5 * time.Second // deadline-aware sends
		defer agents[i].Close()
	}
	// ap1 listens for defense directives — the countermeasure loop.
	directives := agents[0].Directives()

	// transmit pushes one frame through every node's pipeline and ships
	// the resulting bearing reports to the controller.
	var seq uint64
	transmit := func(label string, clientID int, pos secureangle.Point) {
		seq++
		fmt.Printf("%s transmits (seq %d)\n", label, seq)
		frame := testbed.UplinkFrame(clientID, uint16(seq), []byte("fence demo"))
		baseband, err := testbed.FrameBaseband(frame, ofdm.QPSK)
		if err != nil {
			log.Fatal(err)
		}
		heard := 0
		for i, n := range nodes {
			rep, err := n.Observe(ctx, pos, baseband)
			if err != nil {
				fmt.Printf("  ap%d: cannot hear the client (%v)\n", i+1, err)
				continue
			}
			fmt.Printf("  %s: bearing %.1f deg\n", rep.AP, rep.BearingDeg)
			if err := agents[i].SendContext(ctx, netproto.Report{
				APName: rep.AP, MAC: frame.Addr2, SeqNo: seq,
				BearingDeg: rep.BearingDeg, Sig: rep.Sig,
			}); err != nil {
				log.Fatal(err)
			}
			heard++
		}
		if heard < 2 {
			fmt.Printf("  controller: no decision possible — fewer than 2 APs heard the packet (fail closed)\n\n")
			return
		}
		d := <-decisions.C
		fmt.Printf("  controller: %s — located at %v (truth %v, error %.2f m)\n\n",
			d.Decision, d.Pos, pos, d.Pos.Dist(pos))
	}

	// Inside clients from three different rooms.
	for _, id := range []int{5, 2, 17} {
		c, err := secureangle.Client(id)
		if err != nil {
			log.Fatal(err)
		}
		transmit(fmt.Sprintf("client %d (%s)", id, c.Room), id, c.Pos)
	}

	// An intruder in the car park outside the west wall: the fused drop
	// pushes its threat score over the quarantine bar.
	intruder := testbed.OutsidePositions()[0]
	transmit("intruder (outside west wall)", 99, intruder)

	select {
	case d := <-directives:
		fmt.Printf("defense: %s directive for %s (score %.2f) — every AP now drops its frames\n",
			d.Action, d.MAC, d.Score)
		if cm, err := nodes[0].ApplyDirective(d.Directive); err == nil {
			fmt.Printf("defense: ap1 applied countermeasure %s\n", cm.Action)
		}
	case <-time.After(5 * time.Second):
		fmt.Println("defense: no directive (intruder unheard by 2+ APs)")
	}
}
