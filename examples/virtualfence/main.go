// Virtualfence: the section 2.3.1 application end to end. Three simulated
// APs each run the full physical-layer pipeline on every transmission,
// stream their direct-path bearings to a fusion controller over loopback
// TCP, and the controller triangulates and applies the building-boundary
// fence: inside clients are allowed, an outside intruder's frames are
// dropped.
//
//	go run ./examples/virtualfence
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"secureangle/internal/core"
	"secureangle/internal/geom"
	"secureangle/internal/locate"
	"secureangle/internal/netproto"
	"secureangle/internal/ofdm"
	"secureangle/internal/rng"
	"secureangle/internal/testbed"
)

func main() {
	ctx := context.Background()
	environment, shell := testbed.Building()

	// Controller with the building shell as the fence boundary. The 1.5 m
	// margin absorbs the localisation error of poorly-conditioned
	// geometries (an outside transmitter seen by two nearly-collinear
	// APs can triangulate just inside the wall).
	controller := netproto.NewController(&locate.Fence{Boundary: shell, MarginM: 1.5})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	controller.Serve(ln)
	defer controller.Close()
	// v2 subscription API: any number of consumers can subscribe to the
	// fused decisions (the legacy Decisions() channel still works too).
	decisions := controller.Subscribe(16)
	defer controller.Unsubscribe(decisions)
	fmt.Printf("fence controller on %s\n\n", ln.Addr())

	// Three full APs (array + calibration + MUSIC pipeline).
	apPositions := []geom.Point{testbed.AP1, testbed.AP2, testbed.AP3}
	aps := make([]*core.AP, len(apPositions))
	agents := make([]*netproto.Agent, len(apPositions))
	for i, pos := range apPositions {
		name := fmt.Sprintf("ap%d", i+1)
		fe := testbed.NewAPFrontEnd(testbed.CircularArray(), pos, rng.New(int64(100+i)))
		aps[i] = core.NewAP(name, fe, environment, core.DefaultConfig())
		// DialContext negotiates protocol v2 (versioned Hello/Welcome);
		// a v1 agent dialing the same controller still works.
		dialCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
		agents[i], err = netproto.DialContext(dialCtx, ln.Addr().String(), netproto.Hello{Name: name, Pos: pos})
		cancel()
		if err != nil {
			log.Fatal(err)
		}
		agents[i].Timeout = 5 * time.Second // deadline-aware sends
		defer agents[i].Close()
	}

	// transmit pushes one frame through every AP's pipeline and ships the
	// resulting bearing reports to the controller.
	var seq uint64
	transmit := func(label string, clientID int, pos geom.Point) {
		seq++
		fmt.Printf("%s transmits (seq %d)\n", label, seq)
		frame := testbed.UplinkFrame(clientID, uint16(seq), []byte("fence demo"))
		baseband, err := testbed.FrameBaseband(frame, ofdm.QPSK)
		if err != nil {
			log.Fatal(err)
		}
		heard := 0
		for i, ap := range aps {
			rep, err := ap.Observe(pos, baseband)
			if err != nil {
				fmt.Printf("  %s: cannot hear the client (%v)\n", ap.Name, err)
				continue
			}
			fmt.Printf("  %s: bearing %.1f deg\n", ap.Name, rep.BearingDeg)
			if err := agents[i].Send(netproto.Report{
				APName: ap.Name, MAC: frame.Addr2, SeqNo: seq,
				BearingDeg: rep.BearingDeg, Sig: rep.Sig,
			}); err != nil {
				log.Fatal(err)
			}
			heard++
		}
		if heard < 2 {
			fmt.Printf("  controller: no decision possible — fewer than 2 APs heard the packet (fail closed)\n\n")
			return
		}
		d := <-decisions.C
		fmt.Printf("  controller: %s — located at %v (truth %v, error %.2f m)\n\n",
			d.Decision, d.Pos, pos, d.Pos.Dist(pos))
	}

	// Inside clients from three different rooms.
	for _, id := range []int{5, 2, 17} {
		c, err := testbed.ClientByID(id)
		if err != nil {
			log.Fatal(err)
		}
		transmit(fmt.Sprintf("client %d (%s)", id, c.Room), id, c.Pos)
	}

	// An intruder in the car park outside the west wall.
	transmit("intruder (outside west wall)", 99, testbed.OutsidePositions()[0])
}
