// Mobility: the paper's section 5 future work made concrete — a client
// walks through the building transmitting as it goes; three APs estimate
// per-packet bearings, the bearings triangulate, and an alpha-beta filter
// smooths the fixes into a mobility trace.
//
//	go run ./examples/mobility
package main

import (
	"fmt"
	"log"

	"secureangle/internal/core"
	"secureangle/internal/geom"
	"secureangle/internal/locate"
	"secureangle/internal/ofdm"
	"secureangle/internal/rng"
	"secureangle/internal/testbed"
	"secureangle/internal/track"
)

func main() {
	environment, _ := testbed.Building()
	apPositions := []geom.Point{testbed.AP1, testbed.AP2, testbed.AP3}
	aps := make([]*core.AP, len(apPositions))
	for i, pos := range apPositions {
		fe := testbed.NewAPFrontEnd(testbed.CircularArray(), pos, rng.New(int64(i+1)))
		aps[i] = core.NewAP(fmt.Sprintf("ap%d", i+1), fe, environment, core.DefaultConfig())
	}

	// A walk: start near the south-west, pass the pillar, enter the east
	// office. 1.2 m/s, one packet every half second.
	path := track.LinearTrace([]geom.Point{
		{X: 3, Y: 3}, {X: 12, Y: 4}, {X: 14, Y: 8}, {X: 19, Y: 7},
	}, 1.2, 0.5)
	filter := track.NewFilter(0.5, 0.25)

	fmt.Println("t(s)    truth              fix                error(m)")
	prevT := 0.0
	for i, wp := range path {
		dt := wp.T - prevT
		prevT = wp.T
		if i == 0 {
			dt = 0.5
		}
		frame := testbed.UplinkFrame(42, uint16(i), []byte("walking"))
		baseband, err := testbed.FrameBaseband(frame, ofdm.QPSK)
		if err != nil {
			log.Fatal(err)
		}
		var obs []locate.BearingObs
		for j, ap := range aps {
			rep, err := ap.Observe(wp.Pos, baseband)
			if err != nil {
				continue
			}
			obs = append(obs, locate.BearingObs{AP: apPositions[j], BearingDeg: rep.BearingDeg})
		}
		est, ok := filter.Step(obs, dt)
		marker := " "
		if !ok {
			marker = "~" // coasting on the motion model
		}
		if i%2 == 0 {
			fmt.Printf("%-7.1f %-18v %-18v %.2f %s\n", wp.T, wp.Pos, est, est.Dist(wp.Pos), marker)
		}
	}
	fmt.Printf("\nfinal velocity estimate: %v m/s (true speed 1.2 m/s)\n", filter.Velocity())
}
