// Mobility: the paper's section 5 future work made concrete — a client
// walks through the building transmitting as it goes; three APs
// estimate per-packet bearings and stream them to the fusion
// controller over TCP, which triangulates each transmission, applies
// the virtual fence, and folds the fixes into a live alpha-beta
// mobility track. The walk is replayed against the controller's fused
// decisions, and the final trace state is pulled back over the wire
// with the v2 Query/Tracks exchange (the same data `secureangle
// tracks` prints for a production controller).
//
//	go run ./examples/mobility
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"secureangle/internal/core"
	"secureangle/internal/geom"
	"secureangle/internal/locate"
	"secureangle/internal/netproto"
	"secureangle/internal/ofdm"
	"secureangle/internal/rng"
	"secureangle/internal/testbed"
	"secureangle/internal/track"
)

func main() {
	environment, shell := testbed.Building()
	apPositions := []geom.Point{testbed.AP1, testbed.AP2, testbed.AP3}
	aps := make([]*core.AP, len(apPositions))
	for i, pos := range apPositions {
		fe := testbed.NewAPFrontEnd(testbed.CircularArray(), pos, rng.New(int64(i+1)))
		aps[i] = core.NewAP(fmt.Sprintf("ap%d", i+1), fe, environment, core.DefaultConfig())
	}

	// The fusion controller owns localisation now: bearings go to it
	// over TCP and it maintains the mobility track.
	controller := netproto.NewController(&locate.Fence{Boundary: shell})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	controller.Serve(ln)
	defer controller.Close()
	sub := controller.Subscribe(16)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	agents := make([]*netproto.Agent, len(aps))
	for i, pos := range apPositions {
		agents[i], err = netproto.DialContext(ctx, ln.Addr().String(), netproto.Hello{
			Name: fmt.Sprintf("ap%d", i+1), Pos: pos,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer agents[i].Close()
	}

	// A walk: start near the south-west, pass the pillar, enter the east
	// office. 1.2 m/s, one packet every half second.
	const clientID = 12
	mac := testbed.ClientMAC(clientID)
	path := track.LinearTrace([]geom.Point{
		{X: 3, Y: 3}, {X: 12, Y: 4}, {X: 14, Y: 8}, {X: 19, Y: 7},
	}, 1.2, 0.5)

	fmt.Println("t(s)    truth              controller fix     error(m)")
	for i, wp := range path {
		frame := testbed.UplinkFrame(clientID, uint16(i), []byte("walking"))
		baseband, err := testbed.FrameBaseband(frame, ofdm.QPSK)
		if err != nil {
			log.Fatal(err)
		}
		reported := 0
		for j, ap := range aps {
			rep, err := ap.Observe(wp.Pos, baseband)
			if err != nil {
				continue // blocked or undetected at this AP
			}
			if err := agents[j].SendContext(ctx, netproto.Report{
				APName: fmt.Sprintf("ap%d", j+1), MAC: mac, SeqNo: uint64(i),
				BearingDeg: rep.BearingDeg,
			}); err != nil {
				log.Fatal(err)
			}
			reported++
		}
		if reported < 2 {
			// Too few bearings to fuse: the controller's PendingTTL will
			// expire this transmission; the walk coasts.
			fmt.Printf("%-7.1f %-18v %-18s\n", wp.T, wp.Pos, "(insufficient bearings)")
			continue
		}
		select {
		case d := <-sub.C:
			if i%2 == 0 {
				fmt.Printf("%-7.1f %-18v %-18v %.2f\n", wp.T, wp.Pos, d.Pos, d.Pos.Dist(wp.Pos))
			}
		case <-time.After(3 * time.Second):
			fmt.Printf("%-7.1f %-18v %-18s\n", wp.T, wp.Pos, "(no decision)")
		}
	}

	// Pull the finished mobility trace back over the wire: the v2
	// Query/Tracks exchange any connected agent may use.
	states, err := agents[0].QueryTracks(ctx, netproto.Query{MAC: mac})
	if err != nil {
		log.Fatal(err)
	}
	if len(states) == 0 {
		log.Fatal("controller holds no track for the walker")
	}
	ts := states[0]
	final := path[len(path)-1].Pos
	fmt.Printf("\ncontroller track for %s: %d fixes, last fix %v (truth %v, error %.2f m)\n",
		ts.MAC, ts.Fixes, ts.Pos, final, ts.Pos.Dist(final))
	st := controller.Stats()
	fmt.Printf("controller stats: ingested=%d decisions=%d forced=%d expired=%d\n",
		st.Ingested, st.Decisions, st.ForcedTimeouts, st.PendingExpired)
}
