// Spoofdetect: the section 2.3.2 application, on the v2 Node facade.
// The AP trains on a legitimate client's AoA signature, keeps accepting
// that client through normal channel noise, and flags an attacker who
// transmits with the victim's MAC address from a different location —
// including an attacker whose directional antenna defeats the RSS
// signalprint baseline. The scored verdicts show the margin of every
// call: how much drift headroom a clean packet had, and how far past
// the threshold the spoofed ones landed.
//
//	go run ./examples/spoofdetect
package main

import (
	"context"
	"fmt"
	"log"

	"secureangle"
	"secureangle/internal/baseline"
	"secureangle/internal/env"
	"secureangle/internal/geom"
	"secureangle/internal/ofdm"
	"secureangle/internal/testbed"
)

func main() {
	ctx := context.Background()
	node, err := secureangle.New(secureangle.WithName("ap1"), secureangle.WithSeed(11))
	if err != nil {
		log.Fatal(err)
	}

	victim, err := secureangle.Client(5)
	if err != nil {
		log.Fatal(err)
	}
	attackerPos, err := secureangle.Client(9) // across the room
	if err != nil {
		log.Fatal(err)
	}

	// Training stage: the first frame from this MAC enrolls its
	// signature Scl.
	train := testbed.UplinkFrame(victim.ID, 0, []byte("association"))
	if _, err := node.ProcessFrame(ctx, victim.Pos, train, ofdm.QPSK); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained signature for %s (client %d at %v)\n\n",
		testbed.ClientMAC(victim.ID), victim.ID, victim.Pos)

	// Normal traffic: accepted, signature tracked. Margin() is the
	// headroom left before the drift would be flagged.
	fmt.Println("legitimate traffic:")
	for seq := uint16(1); seq <= 5; seq++ {
		f := testbed.UplinkFrame(victim.ID, seq, []byte("normal data"))
		fr, err := node.ProcessFrame(ctx, victim.Pos, f, ofdm.QPSK)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  seq %d: %-6s (distance %.4f, margin %+.4f)\n",
			seq, fr.Decision, fr.Distance, fr.Verdict().Margin())
	}

	// The attack: same MAC, different location.
	fmt.Println("\nattacker spoofing the victim's MAC from across the room:")
	for seq := uint16(100); seq < 103; seq++ {
		f := testbed.UplinkFrame(victim.ID, seq, []byte("injected"))
		fr, err := node.ProcessFrame(ctx, attackerPos.Pos, f, ofdm.QPSK)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  seq %d: %-6s (distance %.4f, margin %+.4f)\n",
			seq, fr.Decision, fr.Distance, fr.Verdict().Margin())
	}

	// Who was it really? Rank the registry by signature distance: the
	// attack frames' physical signature matches the attacker's own
	// enrolled station.
	if _, err := node.ProcessFrame(ctx, attackerPos.Pos, testbed.UplinkFrame(attackerPos.ID, 1, nil), ofdm.QPSK); err != nil {
		log.Fatal(err)
	}
	lastSpoof := testbed.UplinkFrame(victim.ID, 200, []byte("injected"))
	fr, err := node.ProcessFrame(ctx, attackerPos.Pos, lastSpoof, ofdm.QPSK)
	if err != nil {
		log.Fatal(err)
	}
	ids, err := node.AP().Identify(fr.Sig)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwho does the flagged signature actually match?")
	for _, id := range ids {
		fmt.Printf("  %s  distance %.4f\n", id.MAC, id.Distance)
	}

	// The RSS baseline against a directional-antenna attacker.
	fmt.Println("\nRSS signalprint baseline vs a 20 dB directional antenna:")
	environment := node.Environment()
	victimPrint := rssAt(environment, victim.Pos)
	attackerPrint := rssAt(environment, attackerPos.Pos)
	atk := baseline.DirectionalAttacker{MaxGainDB: 20, ErrorDB: 1}
	forged, err := atk.ForgePrint(victimPrint, attackerPrint)
	if err != nil {
		log.Fatal(err)
	}
	match, err := baseline.DefaultMatcher().Matches(victimPrint, forged)
	if err != nil {
		log.Fatal(err)
	}
	diff, _ := baseline.Distance(victimPrint, forged)
	fmt.Printf("  forged print accepted by RSS matcher: %v (worst per-AP diff %.1f dB)\n", match, diff)
	fmt.Println("  -> RSS identification subverted; the AoA signature above was not.")
}

// rssAt computes the per-AP received powers for the signalprint baseline:
// the sum of path-gain powers at each of the three AP positions.
func rssAt(e *env.Environment, tx geom.Point) baseline.Signalprint {
	apPositions := []geom.Point{testbed.AP1, testbed.AP2, testbed.AP3}
	powers := make([]float64, len(apPositions))
	for i, ap := range apPositions {
		var p float64
		for _, path := range e.Trace(tx, ap) {
			p += real(path.Gain)*real(path.Gain) + imag(path.Gain)*imag(path.Gain)
		}
		powers[i] = p
	}
	return baseline.FromPowers(powers)
}
