// Spoofdetect: the section 2.3.2 application. The AP trains on a
// legitimate client's AoA signature, keeps accepting that client through
// normal channel noise, and flags an attacker who transmits with the
// victim's MAC address from a different location — including an attacker
// whose directional antenna defeats the RSS-signalprint baseline.
//
//	go run ./examples/spoofdetect
package main

import (
	"fmt"
	"log"

	"secureangle/internal/baseline"
	"secureangle/internal/core"
	"secureangle/internal/env"
	"secureangle/internal/geom"
	"secureangle/internal/ofdm"
	"secureangle/internal/rng"
	"secureangle/internal/testbed"
)

func main() {
	environment, _ := testbed.Building()
	fe := testbed.NewAPFrontEnd(testbed.CircularArray(), testbed.AP1, rng.New(11))
	ap := core.NewAP("ap1", fe, environment, core.DefaultConfig())

	victim, err := testbed.ClientByID(5)
	if err != nil {
		log.Fatal(err)
	}
	attackerPos, err := testbed.ClientByID(9) // across the room
	if err != nil {
		log.Fatal(err)
	}

	// Training stage: the first frame from this MAC enrolls its
	// signature Scl.
	train := testbed.UplinkFrame(victim.ID, 0, []byte("association"))
	if _, err := ap.ProcessFrame(victim.Pos, train, ofdm.QPSK); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained signature for %s (client %d at %v)\n\n",
		testbed.ClientMAC(victim.ID), victim.ID, victim.Pos)

	// Normal traffic: accepted, signature tracked.
	fmt.Println("legitimate traffic:")
	for seq := uint16(1); seq <= 5; seq++ {
		f := testbed.UplinkFrame(victim.ID, seq, []byte("normal data"))
		fr, err := ap.ProcessFrame(victim.Pos, f, ofdm.QPSK)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  seq %d: %-6s (signature distance %.4f)\n", seq, fr.Decision, fr.Distance)
	}

	// The attack: same MAC, different location.
	fmt.Println("\nattacker spoofing the victim's MAC from across the room:")
	for seq := uint16(100); seq < 103; seq++ {
		f := testbed.UplinkFrame(victim.ID, seq, []byte("injected"))
		fr, err := ap.ProcessFrame(attackerPos.Pos, f, ofdm.QPSK)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  seq %d: %-6s (signature distance %.4f)\n", seq, fr.Decision, fr.Distance)
	}

	// Who was it really? Rank the registry by signature distance: the
	// attack frames' physical signature matches the attacker's own
	// enrolled station.
	if _, err := ap.ProcessFrame(attackerPos.Pos, testbed.UplinkFrame(attackerPos.ID, 1, nil), ofdm.QPSK); err != nil {
		log.Fatal(err)
	}
	lastSpoof := testbed.UplinkFrame(victim.ID, 200, []byte("injected"))
	fr, err := ap.ProcessFrame(attackerPos.Pos, lastSpoof, ofdm.QPSK)
	if err != nil {
		log.Fatal(err)
	}
	ids, err := ap.Identify(fr.Sig)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwho does the flagged signature actually match?")
	for _, id := range ids {
		fmt.Printf("  %s  distance %.4f\n", id.MAC, id.Distance)
	}

	// The RSS baseline against a directional-antenna attacker.
	fmt.Println("\nRSS signalprint baseline vs a 20 dB directional antenna:")
	victimPrint := rssAt(environment, victim.Pos)
	attackerPrint := rssAt(environment, attackerPos.Pos)
	atk := baseline.DirectionalAttacker{MaxGainDB: 20, ErrorDB: 1}
	forged, err := atk.ForgePrint(victimPrint, attackerPrint)
	if err != nil {
		log.Fatal(err)
	}
	match, err := baseline.DefaultMatcher().Matches(victimPrint, forged)
	if err != nil {
		log.Fatal(err)
	}
	diff, _ := baseline.Distance(victimPrint, forged)
	fmt.Printf("  forged print accepted by RSS matcher: %v (worst per-AP diff %.1f dB)\n", match, diff)
	fmt.Println("  -> RSS identification subverted; the AoA signature above was not.")
}

// rssAt computes the per-AP received powers for the signalprint baseline:
// the sum of path-gain powers at each of the three AP positions.
func rssAt(e *env.Environment, tx geom.Point) baseline.Signalprint {
	apPositions := []geom.Point{testbed.AP1, testbed.AP2, testbed.AP3}
	powers := make([]float64, len(apPositions))
	for i, ap := range apPositions {
		var p float64
		for _, path := range e.Trace(tx, ap) {
			p += real(path.Gain)*real(path.Gain) + imag(path.Gain)*imag(path.Gain)
		}
		powers[i] = p
	}
	return baseline.FromPowers(powers)
}
