// Quickstart: the smallest end-to-end SecureAngle use — one access point,
// one client, one packet, one bearing.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"secureangle/internal/core"
	"secureangle/internal/ofdm"
	"secureangle/internal/rng"
	"secureangle/internal/testbed"
)

func main() {
	// The Figure 4 office: walls, a cement pillar, 20 clients, and an
	// 8-antenna AP.
	environment, _ := testbed.Building()

	// An AP with the paper's octagonal circular array. NewAP runs the
	// section 2.2 phase calibration automatically.
	frontEnd := testbed.NewAPFrontEnd(testbed.CircularArray(), testbed.AP1, rng.New(42))
	ap := core.NewAP("ap1", frontEnd, environment, core.DefaultConfig())

	// Client 5 sends one 802.11-style uplink data frame.
	client, err := testbed.ClientByID(5)
	if err != nil {
		log.Fatal(err)
	}
	frame := testbed.UplinkFrame(client.ID, 1, []byte("hello, SecureAngle"))
	baseband, err := testbed.FrameBaseband(frame, ofdm.QPSK)
	if err != nil {
		log.Fatal(err)
	}

	// The AP receives it through the simulated channel and runs the full
	// pipeline: Schmidl-Cox detection, calibration, packet-scale
	// correlation, MUSIC.
	report, err := ap.Observe(client.Pos, baseband)
	if err != nil {
		log.Fatal(err)
	}

	truth := testbed.GroundTruth(testbed.AP1, client.Pos)
	fmt.Printf("client %d ground-truth bearing: %.1f deg\n", client.ID, truth)
	fmt.Printf("estimated bearing:              %.1f deg\n", report.BearingDeg)
	fmt.Printf("detection metric:               %.2f\n", report.Detection.Metric)
	fmt.Printf("MDL source count:               %d\n", report.Sources)
	fmt.Printf("estimated SNR:                  %.1f dB\n", report.SNRdB)
	fmt.Printf("signature grid points:          %d\n", len(report.Sig.P))

	// The top pseudospectrum peaks are the client's AoA signature
	// structure: direct path plus reflections.
	fmt.Println("pseudospectrum peaks (bearing, dB rel. strongest):")
	for _, p := range report.Spectrum.Peaks(10, 15) {
		fmt.Printf("  %6.1f deg   %6.1f dB\n", p.BearingDeg, p.RelDB)
	}
}
