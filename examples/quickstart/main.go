// Quickstart: the smallest end-to-end SecureAngle use — one access point,
// one client, one packet, one bearing — on the v2 Node API: a long-lived
// node built with functional options, context threaded through the
// pipeline, and typed errors.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"secureangle"
	"secureangle/internal/testbed"
)

func main() {
	ctx := context.Background()

	// An AP with the paper's octagonal circular array in the Figure 4
	// office. New runs the section 2.2 phase calibration automatically;
	// every unset option takes the paper-testbed default.
	node, err := secureangle.New(
		secureangle.WithName("ap1"),
		secureangle.WithPosition(secureangle.AP1),
		secureangle.WithSeed(42),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Client 5 sends one 802.11-style uplink data frame. The node
	// receives it through the simulated channel and runs the full
	// pipeline: Schmidl-Cox detection, calibration, packet-scale
	// correlation, MUSIC.
	client, err := secureangle.Client(5)
	if err != nil {
		log.Fatal(err)
	}
	report, err := node.ObserveTestbedFrame(ctx, client.ID, client.Pos)
	switch {
	case errors.Is(err, secureangle.ErrNotDetected):
		log.Fatal("no packet detected — SNR below the detection cliff")
	case errors.Is(err, secureangle.ErrBlocked):
		log.Fatal("client fully blocked — no propagation path")
	case err != nil:
		log.Fatal(err)
	}

	truth := testbed.GroundTruth(testbed.AP1, client.Pos)
	fmt.Printf("client %d ground-truth bearing: %.1f deg\n", client.ID, truth)
	fmt.Printf("estimated bearing:              %.1f deg\n", report.BearingDeg)
	fmt.Printf("detection metric:               %.2f\n", report.Detection.Metric)
	fmt.Printf("MDL source count:               %d\n", report.Sources)
	fmt.Printf("estimated SNR:                  %.1f dB\n", report.SNRdB)
	fmt.Printf("signature grid points:          %d\n", len(report.Sig.P))

	// The top pseudospectrum peaks are the client's AoA signature
	// structure: direct path plus reflections.
	fmt.Println("pseudospectrum peaks (bearing, dB rel. strongest):")
	for _, p := range report.Spectrum.Peaks(10, 15) {
		fmt.Printf("  %6.1f deg   %6.1f dB\n", p.BearingDeg, p.RelDB)
	}

	// The same pipeline as an always-on service: the streaming handle
	// accepts transmissions with backpressure and delivers results in
	// submission order.
	stream := node.Stream(ctx, 8)
	go func() {
		for id := 1; id <= 5; id++ {
			c, err := secureangle.Client(id)
			if err != nil {
				continue
			}
			item, err := secureangle.TestbedBatchItem(c, uint16(id))
			if err != nil {
				continue
			}
			if _, err := stream.Submit(ctx, item); err != nil {
				return
			}
		}
		stream.Close()
	}()
	fmt.Println("\nstreaming ingest (clients 1-5, submission order):")
	for r := range stream.Results() {
		if r.Err != nil {
			fmt.Printf("  #%d: %v\n", r.Seq, r.Err)
			continue
		}
		fmt.Printf("  #%d: bearing %6.1f deg, SNR %5.1f dB\n", r.Seq, r.Report.BearingDeg, r.Report.SNRdB)
	}
}
