// Calibration: demonstrates why the section 2.2 procedure is necessary.
// The same packet is processed twice — once with the per-chain
// downconverter phase offsets uncorrected (bearing estimation breaks) and
// once after applying the offsets recovered from the cabled reference
// capture (bearing estimation works).
//
//	go run ./examples/calibration
package main

import (
	"fmt"
	"log"

	"secureangle/internal/detect"
	"secureangle/internal/geom"
	"secureangle/internal/music"
	"secureangle/internal/ofdm"
	"secureangle/internal/radio"
	"secureangle/internal/rng"
	"secureangle/internal/testbed"
)

func main() {
	environment, _ := testbed.Building()
	arr := testbed.CircularArray()
	fe := testbed.NewAPFrontEnd(arr, testbed.AP1, rng.New(7))

	client, err := testbed.ClientByID(5)
	if err != nil {
		log.Fatal(err)
	}
	truth := testbed.GroundTruth(testbed.AP1, client.Pos)

	frame := testbed.UplinkFrame(client.ID, 1, []byte("calibration demo"))
	baseband, err := testbed.FrameBaseband(frame, ofdm.QPSK)
	if err != nil {
		log.Fatal(err)
	}
	streams, err := fe.Receive(environment, client.Pos, baseband)
	if err != nil {
		log.Fatal(err)
	}

	// Keep an uncalibrated copy.
	raw := make([][]complex128, len(streams))
	for i, s := range streams {
		raw[i] = append([]complex128(nil), s...)
	}

	// Section 2.2: switch the inputs to the reference source, measure the
	// seven relative offsets, switch back, subtract.
	offsets := fe.Calibrate(4000)
	radio.ApplyCalibration(streams, offsets)

	estimate := func(set [][]complex128) float64 {
		dets := detect.Find(set[0], detect.DefaultConfig())
		if len(dets) == 0 {
			log.Fatal("no packet detected")
		}
		n := len(set[0]) - dets[0].Start
		win, ok := detect.ExtractAligned(set, dets[0], n)
		if !ok {
			log.Fatal("extraction failed")
		}
		r, err := music.Covariance(win)
		if err != nil {
			log.Fatal(err)
		}
		est := &music.MUSIC{Sources: 0, Samples: n}
		ps, err := est.Pseudospectrum(r, arr, arr.ScanGrid(1))
		if err != nil {
			log.Fatal(err)
		}
		return ps.PeakBearing()
	}

	rawBearing := estimate(raw)
	calBearing := estimate(streams)

	fmt.Printf("ground-truth bearing:        %7.1f deg\n", truth)
	fmt.Printf("uncalibrated estimate:       %7.1f deg (error %.1f)\n",
		rawBearing, geom.AngularDistDeg(rawBearing, truth))
	fmt.Printf("calibrated estimate:         %7.1f deg (error %.1f)\n",
		calBearing, geom.AngularDistDeg(calBearing, truth))
	fmt.Println("\nper-chain offsets recovered (radians, relative to chain 1):")
	for i, o := range offsets {
		fmt.Printf("  chain %d: %+.4f\n", i+1, o)
	}
}
