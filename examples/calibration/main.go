// Calibration: demonstrates why the section 2.2 procedure is necessary,
// on the v2 Node facade. A node built with deferred calibration refuses
// observations with the typed ErrNotCalibrated (the service posture:
// come up, register, calibrate on command); estimating on the raw
// capture with the offsets uncorrected breaks bearing estimation, and
// node.Calibrate restores it.
//
//	go run ./examples/calibration
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"secureangle"
	"secureangle/internal/detect"
	"secureangle/internal/geom"
	"secureangle/internal/music"
	"secureangle/internal/ofdm"
	"secureangle/internal/testbed"
)

func main() {
	ctx := context.Background()
	// Deferred calibration: the constructor skips the section 2.2 pass.
	node, err := secureangle.New(
		secureangle.WithName("ap1"),
		secureangle.WithSeed(7),
		secureangle.WithDeferredCalibration(),
	)
	if err != nil {
		log.Fatal(err)
	}

	client, err := secureangle.Client(5)
	if err != nil {
		log.Fatal(err)
	}
	truth := testbed.GroundTruth(secureangle.AP1, client.Pos)

	frame := testbed.UplinkFrame(client.ID, 1, []byte("calibration demo"))
	baseband, err := testbed.FrameBaseband(frame, ofdm.QPSK)
	if err != nil {
		log.Fatal(err)
	}

	// Before calibration the pipeline refuses with a typed error —
	// errors.Is against the sentinel, the v2 error taxonomy.
	if _, err := node.Observe(ctx, client.Pos, baseband); !errors.Is(err, secureangle.ErrNotCalibrated) {
		log.Fatalf("expected ErrNotCalibrated, got %v", err)
	}
	fmt.Println("uncalibrated node refuses observations: ErrNotCalibrated")

	// Capture the raw streams once, so the calibrated and uncalibrated
	// estimates see the same packet.
	raw, err := node.AP().Receive(client.Pos, baseband)
	if err != nil {
		log.Fatal(err)
	}
	rawCopy := make([][]complex128, len(raw))
	for i, s := range raw {
		rawCopy[i] = append([]complex128(nil), s...)
	}

	// What the refusal prevents: estimating on the capture with the
	// per-chain downconverter phases uncorrected scrambles the steering
	// model and the bearing lands far from the truth.
	rawBearing := estimate(rawCopy, node.AP().Grid())

	// Section 2.2: switch the inputs to the reference source, measure
	// the relative offsets, switch back, subtract.
	node.Calibrate()
	fmt.Println("node.Calibrate() ran the section 2.2 reference-tone procedure")
	rep, err := node.AP().ProcessStreams(raw)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nground-truth bearing:        %7.1f deg\n", truth)
	fmt.Printf("uncalibrated estimate:       %7.1f deg (error %.1f)\n",
		rawBearing, geom.AngularDistDeg(rawBearing, truth))
	fmt.Printf("calibrated estimate:         %7.1f deg (error %.1f)\n",
		rep.BearingDeg, geom.AngularDistDeg(rep.BearingDeg, truth))

	fmt.Println("\nper-chain offsets recovered (radians, relative to chain 1):")
	for i, o := range node.AP().Offsets() {
		fmt.Printf("  chain %d: %+.4f\n", i+1, o)
	}
}

// estimate runs detection + MUSIC directly on raw streams, bypassing
// the AP's calibration — the broken path the Node API refuses to take.
func estimate(set [][]complex128, grid []float64) float64 {
	dets := detect.Find(set[0], detect.DefaultConfig())
	if len(dets) == 0 {
		log.Fatal("no packet detected")
	}
	n := len(set[0]) - dets[0].Start
	win, ok := detect.ExtractAligned(set, dets[0], n)
	if !ok {
		log.Fatal("extraction failed")
	}
	r, err := music.Covariance(win)
	if err != nil {
		log.Fatal(err)
	}
	est := &music.MUSIC{Sources: 0, Samples: n}
	ps, err := est.Pseudospectrum(r, testbed.CircularArray(), grid)
	if err != nil {
		log.Fatal(err)
	}
	return ps.PeakBearing()
}
