//go:build race

package secureangle

// raceDetectorEnabled reports whether this test binary was built with
// -race. Under the race detector sync.Pool deliberately drops a
// fraction of Puts (to widen the interleavings it can observe), so
// pooled-path allocation counts are not meaningful there.
const raceDetectorEnabled = true
