# SecureAngle build/test/bench entry points (mirrors the CI jobs).

GO ?= go

.PHONY: build test race stress bench bench-smoke fuzz lint ops-smoke

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race: build
	$(GO) test -race ./...

# The stress trio CI runs: wire protocol, fusion/defense engines, and
# the flight recorder (journal + replay + crash recovery), each 3x
# under the race detector.
stress:
	$(GO) test -race -count=3 ./internal/netproto
	$(GO) test -race -count=3 -run Fusion ./internal/fusion ./internal/netproto
	$(GO) test -race -count=3 -run Defense ./...
	$(GO) test -race -count=3 -run 'Journal|Replay|Recovery' ./...
	$(GO) test -race -count=3 -run 'Ops|Enroll|Status' ./...

# Headline benchmarks -> BENCH_PR$(PR).json (see scripts/bench.sh; CI
# uploads the file as an artifact and the script prints a side-by-side
# delta against the previous PR's file). Override with `make bench PR=7`.
PR ?= 7
bench:
	PR=$(PR) sh scripts/bench.sh

# Fast 2x-regression gate against the committed baseline JSON.
bench-smoke:
	sh scripts/bench_smoke.sh

# Time-boxed native fuzzing of every hostile-bytes decoder: the wire
# frames, the journal event codecs, and the engine snapshot codecs.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzUnmarshal -fuzztime 30s ./internal/netproto
	$(GO) test -run '^$$' -fuzz FuzzEventDecoders -fuzztime 15s ./internal/journal
	$(GO) test -run '^$$' -fuzz FuzzFusionSnapshotRestore -fuzztime 15s ./internal/fusion
	$(GO) test -run '^$$' -fuzz FuzzDefenseSnapshotRestore -fuzztime 15s ./internal/defense

# End-to-end smoke of the operations surface: real binary, real ops
# endpoint, /metrics + /status validated from outside, enrollment
# runbook exercised (see scripts/ops_smoke.sh).
ops-smoke:
	sh scripts/ops_smoke.sh

lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
