# SecureAngle build/test/bench entry points (mirrors the CI jobs).

GO ?= go

.PHONY: build test race stress bench bench-smoke fuzz lint

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race: build
	$(GO) test -race ./...

# The stress trio CI runs: wire protocol, fusion/defense engines, and
# the flight recorder (journal + replay + crash recovery), each 3x
# under the race detector.
stress:
	$(GO) test -race -count=3 ./internal/netproto
	$(GO) test -race -count=3 -run Fusion ./internal/fusion ./internal/netproto
	$(GO) test -race -count=3 -run Defense ./...
	$(GO) test -race -count=3 -run 'Journal|Replay|Recovery' ./...

# Headline benchmarks -> BENCH_PR$(PR).json (see scripts/bench.sh; CI
# uploads the file as an artifact and the script prints a side-by-side
# delta against the previous PR's file). Override with `make bench PR=7`.
PR ?= 6
bench:
	PR=$(PR) sh scripts/bench.sh

# Fast 2x-regression gate against the committed baseline JSON.
bench-smoke:
	sh scripts/bench_smoke.sh

# Time-boxed native fuzzing of the wire decoder.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzUnmarshal -fuzztime 30s ./internal/netproto

lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
