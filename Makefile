# SecureAngle build/test/bench entry points (mirrors the CI jobs).

GO ?= go

.PHONY: build test race stress bench fuzz lint

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race: build
	$(GO) test -race ./...

# The stress trio CI runs: wire protocol, fusion/defense engines, and
# the flight recorder (journal + replay + crash recovery), each 3x
# under the race detector.
stress:
	$(GO) test -race -count=3 ./internal/netproto
	$(GO) test -race -count=3 -run Fusion ./internal/fusion ./internal/netproto
	$(GO) test -race -count=3 -run Defense ./...
	$(GO) test -race -count=3 -run 'Journal|Replay|Recovery' ./...

# Headline benchmarks -> BENCH_PR5.json (see scripts/bench.sh; CI
# uploads the file as an artifact).
bench:
	sh scripts/bench.sh BENCH_PR5.json

# Time-boxed native fuzzing of the wire decoder.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzUnmarshal -fuzztime 30s ./internal/netproto

lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
