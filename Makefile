# SecureAngle build/test/bench entry points (mirrors the CI jobs).

GO ?= go

.PHONY: build test race stress bench bench-smoke fuzz lint ops-smoke torture

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race: build
	$(GO) test -race ./...

# The stress trio CI runs: wire protocol, fusion/defense engines, and
# the flight recorder (journal + replay + crash recovery), each 3x
# under the race detector.
stress:
	$(GO) test -race -count=3 ./internal/netproto
	$(GO) test -race -count=3 -run Fusion ./internal/fusion ./internal/netproto
	$(GO) test -race -count=3 -run Defense ./...
	$(GO) test -race -count=3 -run 'Journal|Replay|Recovery' ./...
	$(GO) test -race -count=3 -run 'Ops|Enroll|Status' ./...
	$(GO) test -race -count=3 -run 'Partition|Replicat|Standby|Compact' ./...
	$(GO) test -race -count=3 -run 'Trace|Incident' ./...

# Headline benchmarks -> BENCH_PR$(PR).json (see scripts/bench.sh; CI
# uploads the file as an artifact and the script prints a side-by-side
# delta against the previous PR's file). Override with `make bench PR=7`.
PR ?= 10
bench:
	PR=$(PR) sh scripts/bench.sh

# Fast 2x-regression gate against the committed baseline JSON.
bench-smoke:
	sh scripts/bench_smoke.sh

# Time-boxed native fuzzing of every hostile-bytes decoder: the wire
# frames, the journal event codecs, the engine snapshot codecs, the
# signature codec, and the I/Q capture reader.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzUnmarshal -fuzztime 30s ./internal/netproto
	$(GO) test -run '^$$' -fuzz FuzzEventDecoders -fuzztime 15s ./internal/journal
	$(GO) test -run '^$$' -fuzz FuzzFusionSnapshotRestore -fuzztime 15s ./internal/fusion
	$(GO) test -run '^$$' -fuzz FuzzDefenseSnapshotRestore -fuzztime 15s ./internal/defense
	$(GO) test -run '^$$' -fuzz FuzzSignatureCodec -fuzztime 15s ./internal/signature
	$(GO) test -run '^$$' -fuzz FuzzIQFileRead -fuzztime 15s ./internal/iqfile

# Crash-torture the flight recorder: kill -9 a serving controller
# mid-rotation/mid-snapshot under load, many times, and assert every
# journal directory recovers cleanly (see scripts/journal_torture.sh).
torture:
	sh scripts/journal_torture.sh

# End-to-end smoke of the operations surface: real binary, real ops
# endpoint, /metrics + /status validated from outside, enrollment
# runbook exercised (see scripts/ops_smoke.sh).
ops-smoke:
	sh scripts/ops_smoke.sh

lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
