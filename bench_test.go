// Benchmarks that regenerate every table and figure of the paper's
// evaluation (section 3). Each bench wraps the corresponding experiment
// driver and reports the paper's headline quantity as a custom metric, so
// `go test -bench=. -benchmem` both times the pipeline and reproduces the
// result:
//
//	BenchmarkFig5BearingSweep    deg-meanCI99      (paper: ~7 deg)
//	BenchmarkFig6Stability       deg-directSpread  (paper: direct peak stable)
//	BenchmarkFig7Antennas        peaks-8ant        (paper: direct + reflection resolved)
//	BenchmarkAccuracyClaim       frac-within2.5deg (paper: ~0.75)
//	BenchmarkFenceLocalization   m-medianLocErr
//	BenchmarkFenceDecision       frac-correct
//	BenchmarkSpoofDetection      frac-detected     (and frac-rssDetected for the baseline)
//	BenchmarkEstimatorAblation   deg-MUSIC / deg-Bartlett / deg-MVDR
//	BenchmarkCalibrationAblation deg-withCal / deg-withoutCal
//	BenchmarkPacketVsSample      deg-packet / deg-sample
//	BenchmarkSmoothingAblation   deg-smoothed / deg-plain (coherent two-path ULA)
//	BenchmarkPipelinePerPacket   end-to-end per-packet cost of one AP
package secureangle

import (
	"context"
	"fmt"
	"math"
	"testing"

	"secureangle/internal/antenna"
	"secureangle/internal/cmat"
	"secureangle/internal/experiments"
	"secureangle/internal/geom"
	"secureangle/internal/music"
	"secureangle/internal/ofdm"
	"secureangle/internal/rng"
	"secureangle/internal/testbed"
)

func BenchmarkFig5BearingSweep(b *testing.B) {
	b.ReportAllocs()
	var last float64
	for i := 0; i < b.N; i++ {
		// 8 packets per client: enough degrees of freedom that the 99%
		// Student-t half-width is not inflated by the tiny-sample
		// critical value (t(0.99, 2) ~ 9.9 would swamp the physics).
		res, err := experiments.RunFig5(int64(i+1), 8)
		if err != nil {
			b.Fatal(err)
		}
		last = res.MeanCI99
	}
	b.ReportMetric(last, "deg-meanCI99")
}

func BenchmarkFig6Stability(b *testing.B) {
	b.ReportAllocs()
	var spread float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig6(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		spread = 0
		for _, c := range res.Clients {
			spread = math.Max(spread, c.DirectPeakSpreadDeg)
		}
	}
	b.ReportMetric(spread, "deg-directSpread")
}

func BenchmarkFig7Antennas(b *testing.B) {
	b.ReportAllocs()
	var peaks8 float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig7(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Antennas == 8 {
				peaks8 = float64(row.PeakCount)
			}
		}
	}
	b.ReportMetric(peaks8, "peaks-8ant")
}

func BenchmarkAccuracyClaim(b *testing.B) {
	b.ReportAllocs()
	var frac float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAccuracy(int64(i+1), 4)
		if err != nil {
			b.Fatal(err)
		}
		frac = res.FractionWithin2_5
	}
	b.ReportMetric(frac, "frac-within2.5deg")
}

func BenchmarkFenceLocalization(b *testing.B) {
	b.ReportAllocs()
	var med float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFence(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		med = res.MedianLocErrM
	}
	b.ReportMetric(med, "m-medianLocErr")
}

func BenchmarkFenceDecision(b *testing.B) {
	b.ReportAllocs()
	var rate float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFence(int64(i + 100))
		if err != nil {
			b.Fatal(err)
		}
		rate = res.CorrectRate
	}
	b.ReportMetric(rate, "frac-correct")
}

func BenchmarkSpoofDetection(b *testing.B) {
	b.ReportAllocs()
	var aoa, rss float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunSpoof(int64(i+1), 5, 5)
		if err != nil {
			b.Fatal(err)
		}
		aoa, rss = res.AoADetectionRate, res.RSSDetectionRate
	}
	b.ReportMetric(aoa, "frac-detected")
	b.ReportMetric(rss, "frac-rssDetected")
}

func BenchmarkEstimatorAblation(b *testing.B) {
	b.ReportAllocs()
	var m map[string]float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunEstimatorAblation(int64(i+1), 2)
		if err != nil {
			b.Fatal(err)
		}
		m = res.MeanErrDeg
	}
	b.ReportMetric(m["MUSIC"], "deg-MUSIC")
	b.ReportMetric(m["Bartlett"], "deg-Bartlett")
	b.ReportMetric(m["MVDR"], "deg-MVDR")
}

func BenchmarkCalibrationAblation(b *testing.B) {
	b.ReportAllocs()
	var with, without float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunCalibrationAblation(int64(i+1), 3)
		if err != nil {
			b.Fatal(err)
		}
		with, without = res.WithCalDeg, res.WithoutCalDeg
	}
	b.ReportMetric(with, "deg-withCal")
	b.ReportMetric(without, "deg-withoutCal")
}

func BenchmarkPacketVsSample(b *testing.B) {
	b.ReportAllocs()
	var pkt, smp float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunPacketVsSample(int64(i+1), 5)
		if err != nil {
			b.Fatal(err)
		}
		pkt, smp = res.WholePacketDeg, res.SingleSampleDeg
	}
	b.ReportMetric(pkt, "deg-packet")
	b.ReportMetric(smp, "deg-sample")
}

// BenchmarkSmoothingAblation measures forward-backward + spatial
// smoothing against plain MUSIC on a fully-coherent two-path ULA channel
// (the design choice DESIGN.md calls out).
func BenchmarkSmoothingAblation(b *testing.B) {
	arr := antenna.NewHalfWaveULA(8, antenna.DefaultCarrierHz)
	const b1, b2 = 60.0, 120.0
	src := rng.New(1)
	s1 := arr.Steering(b1)
	s2 := arr.Steering(b2)
	const nSamp = 1000
	streams := make([][]complex128, 8)
	for a := range streams {
		streams[a] = make([]complex128, nSamp)
	}
	for t := 0; t < nSamp; t++ {
		sym := src.ComplexGaussian(1)
		for a := 0; a < 8; a++ {
			streams[a][t] = sym * (s1[a] + 0.7i*s2[a])
		}
	}
	for a := 0; a < 8; a++ {
		src.AddAWGN(streams[a], 0.001)
	}
	r, err := music.Covariance(streams)
	if err != nil {
		b.Fatal(err)
	}

	// Worst-case bearing error over the top two peaks (30 dB floor: a
	// smoothed covariance's second path recovers exactly but ~20 dB down).
	// Plain MUSIC on the coherent covariance yields peaks biased several
	// degrees off both paths; smoothing removes the bias.
	errOf := func(ps *music.Pseudospectrum) float64 {
		peaks := ps.Peaks(10, 30)
		if len(peaks) > 2 {
			peaks = peaks[:2]
		}
		worst := 0.0
		for _, truth := range []float64{b1, b2} {
			best := 180.0
			for _, p := range peaks {
				best = math.Min(best, geom.AngularDistDeg(p.BearingDeg, truth))
			}
			worst = math.Max(worst, best)
		}
		return worst
	}

	var plainErr, smoothErr float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		psPlain, err := (&music.MUSIC{Sources: 2}).Pseudospectrum(r, arr, arr.ScanGrid(0.5))
		if err != nil {
			b.Fatal(err)
		}
		plainErr = errOf(psPlain)

		rs, err := music.SpatialSmooth(music.ForwardBackward(r), 5)
		if err != nil {
			b.Fatal(err)
		}
		sub := arr.Subarray(0, 1, 2, 3, 4)
		psSmooth, err := (&music.MUSIC{Sources: 2}).Pseudospectrum(rs, sub, sub.ScanGrid(0.5))
		if err != nil {
			b.Fatal(err)
		}
		smoothErr = errOf(psSmooth)
	}
	b.ReportMetric(plainErr, "deg-plain")
	b.ReportMetric(smoothErr, "deg-smoothed")
}

// BenchmarkPipelinePerPacket times the end-to-end per-packet cost of one
// AP: channel, detection, correlation, eigendecomposition, MUSIC scan.
func BenchmarkPipelinePerPacket(b *testing.B) {
	ap := NewTestbedAP("bench", AP1, 1)
	client, err := Client(5)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ObserveFrame(ap, client.ID, client.Pos); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObserveBatch measures the batched observation pipeline —
// serial channel synthesis ordering, then detect/calibrate/covariance/
// eigendecomposition/manifold-scan fanned out on a bounded worker pool.
// The "serial" rows run the same transmissions through one-at-a-time
// Observe calls as the baseline; the "pooled" rows use ObserveBatch with
// the pool bounded by GOMAXPROCS. Each op is one whole batch, so compare
// ns/op at equal batch size, and sweep parallelism with e.g.
//
//	go test -bench ObserveBatch -cpu 1,2,4
func BenchmarkObserveBatch(b *testing.B) {
	clients := make([]TestbedClient, 0, 20)
	for id := 1; id <= 20; id++ {
		c, err := Client(id)
		if err != nil {
			b.Fatal(err)
		}
		clients = append(clients, c)
	}
	makeItems := func(batch int) []BatchItem {
		items := make([]BatchItem, batch)
		for i := range items {
			c := clients[i%len(clients)]
			bb, err := testbed.FrameBaseband(testbed.UplinkFrame(c.ID, uint16(i), []byte("uplink")), ofdm.QPSK)
			if err != nil {
				b.Fatal(err)
			}
			items[i] = BatchItem{TX: c.Pos, Baseband: bb}
		}
		return items
	}

	for _, batch := range []int{8, 32} {
		items := makeItems(batch)

		b.Run(fmt.Sprintf("batch=%d/serial", batch), func(b *testing.B) {
			ap := NewTestbedAP("bench", AP1, 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, it := range items {
					if _, err := ap.Observe(it.TX, it.Baseband); err != nil {
						b.Fatal(err)
					}
				}
			}
		})

		b.Run(fmt.Sprintf("batch=%d/pooled", batch), func(b *testing.B) {
			// Workers = 0: the pool follows GOMAXPROCS (the -cpu sweep).
			ap := NewTestbedAP("bench", AP1, 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := ap.ObserveBatch(items)
				for _, r := range res {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		})
	}
}

// BenchmarkStreamIngest compares the v2 streaming handle against
// per-call Observe at several batch sizes. The "observe" rows push
// each batch through one-at-a-time ctx-aware Observe calls; the
// "stream" rows submit the batch to an open Stream and wait for all of
// its ordered results. Each op is one whole batch, so compare ns/op at
// equal batch size; parallel gains appear with -cpu > 1 (this mirrors
// BenchmarkObserveBatch's serial/pooled split, but through the
// always-on handle with backpressure and reordering on the path).
func BenchmarkStreamIngest(b *testing.B) {
	ctx := context.Background()
	makeItems := func(batch int) []BatchItem {
		items := make([]BatchItem, batch)
		for i := range items {
			c, err := Client(i%20 + 1)
			if err != nil {
				b.Fatal(err)
			}
			it, err := TestbedBatchItem(c, uint16(i))
			if err != nil {
				b.Fatal(err)
			}
			items[i] = it
		}
		return items
	}

	for _, batch := range []int{1, 16, 64} {
		items := makeItems(batch)

		b.Run(fmt.Sprintf("batch=%d/observe", batch), func(b *testing.B) {
			node, err := New(WithName("bench"), WithSeed(1))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, it := range items {
					if _, err := node.Observe(ctx, it.TX, it.Baseband); err != nil {
						b.Fatal(err)
					}
				}
			}
		})

		b.Run(fmt.Sprintf("batch=%d/stream", batch), func(b *testing.B) {
			node, err := New(WithName("bench"), WithSeed(1))
			if err != nil {
				b.Fatal(err)
			}
			s := node.Stream(ctx, batch)
			defer s.Close()
			acks := make(chan struct{}, batch)
			go func() {
				for r := range s.Results() {
					if r.Err != nil {
						b.Error(r.Err)
					}
					acks <- struct{}{}
				}
			}()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, it := range items {
					if _, err := s.Submit(ctx, it); err != nil {
						b.Fatal(err)
					}
				}
				for range items {
					<-acks
				}
			}
		})
	}
}

// BenchmarkHermEigCovariance isolates the numerical core: Hermitian
// eigendecomposition of an 8x8 packet covariance.
func BenchmarkHermEigCovariance(b *testing.B) {
	src := rng.New(2)
	m := cmat.New(8, 8)
	x := make([]complex128, 8)
	for t := 0; t < 500; t++ {
		for a := range x {
			x[a] = src.ComplexGaussian(1)
		}
		m.AccumulateOuter(x, x)
	}
	m.Hermitize()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cmat.HermEig(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMobilityTracking regenerates the section 5 mobility-trace
// extension, reporting the filtered RMSE.
func BenchmarkMobilityTracking(b *testing.B) {
	b.ReportAllocs()
	var raw, filt float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunMobility(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		raw, filt = res.RawRMSE, res.FilteredRMSE
	}
	b.ReportMetric(raw, "m-rawRMSE")
	b.ReportMetric(filt, "m-filteredRMSE")
}

// BenchmarkDownlinkBeamforming regenerates the section 5 directional
// downlink extension, reporting the mean realised array gain.
func BenchmarkDownlinkBeamforming(b *testing.B) {
	b.ReportAllocs()
	var gain float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunBeamform(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		gain = res.MeanGainDB
	}
	b.ReportMetric(gain, "dB-meanGain")
}

// BenchmarkInterference regenerates the concurrent-transmitter
// experiment, reporting the both-bearing resolve rate.
func BenchmarkInterference(b *testing.B) {
	b.ReportAllocs()
	var rate float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunInterference(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		rate = res.ResolveRate
	}
	b.ReportMetric(rate, "frac-resolved")
}

// BenchmarkSNRSweep regenerates the robustness sweep, reporting the
// detection cliff.
func BenchmarkSNRSweep(b *testing.B) {
	b.ReportAllocs()
	var cliff float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunSNRSweep(int64(i+1), 5)
		if err != nil {
			b.Fatal(err)
		}
		cliff = res.CliffdB
	}
	b.ReportMetric(cliff, "dB-detectionCliff")
}
