#!/bin/sh
# Crash-torture the flight recorder: run a partitioned controller with
# tiny segments and an aggressive snapshot cadence, hammer it with the
# load generator, kill -9 it mid-flight, and assert every partition
# journal replays cleanly afterwards. The next iteration restarts the
# controller on the SAME directory, so crash recovery itself is under
# test too, not just the on-disk format.
#
# The kill is timed randomly inside the load window; with 4 KiB
# segments at ~2000 reports/s a rotation happens many times per second,
# and with -snapshot-every 300ms so do snapshots, so a handful of
# iterations lands kills inside both windows. The loop runs until the
# surviving directories show both >1 segment (a rotation completed or
# was torn) and >=1 snapshot, with a minimum of $MIN_ITERS and a cap of
# $MAX_ITERS iterations.
#
# Usage: scripts/journal_torture.sh  (MIN_ITERS/MAX_ITERS/PORT env-tunable)
set -eu

MIN_ITERS="${MIN_ITERS:-4}"
MAX_ITERS="${MAX_ITERS:-8}"
PORT="${PORT:-7141}"
PARTS=2

workdir="$(mktemp -d)"
bin="$workdir/secureangle"
dir="$workdir/journal"
srv_pid=""
cleanup() {
    [ -n "$srv_pid" ] && kill -9 "$srv_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

echo "torture: building secureangle"
go build -o "$bin" ./cmd/secureangle

seen_rotation=0
seen_snapshot=0
iter=0
while :; do
    iter=$((iter + 1))
    echo "torture: iteration $iter (journal $dir, $PARTS partitions)"

    "$bin" serve -listen "127.0.0.1:$PORT" -journal "$dir" \
        -partitions "$PARTS" -segment-bytes 4096 -snapshot-every 300ms \
        >"$workdir/serve.$iter.log" 2>&1 &
    srv_pid=$!

    # Wait for the listener (loadgen would otherwise fail its dial).
    ok=""
    for _ in $(seq 1 50); do
        if "$bin" loadgen -listen "127.0.0.1:$PORT" -duration 1ms -rate 1 \
            >/dev/null 2>&1; then
            ok=1
            break
        fi
        if ! kill -0 "$srv_pid" 2>/dev/null; then
            echo "torture: server died before listening:" >&2
            cat "$workdir/serve.$iter.log" >&2
            exit 1
        fi
        sleep 0.1
    done
    [ -n "$ok" ] || { echo "torture: server never came up" >&2; exit 1; }

    # Load in the background, then SIGKILL the server somewhere inside
    # the window — no seal, no final snapshot, torn tail likely.
    "$bin" loadgen -listen "127.0.0.1:$PORT" -duration 10s -rate 2000 \
        >"$workdir/loadgen.$iter.log" 2>&1 &
    lg_pid=$!
    sleep "1.$((iter % 3))$((iter % 7))"
    kill -9 "$srv_pid" 2>/dev/null || true
    wait "$srv_pid" 2>/dev/null || true
    srv_pid=""
    wait "$lg_pid" 2>/dev/null || true

    # Every partition journal must replay cleanly from whatever
    # survived on disk.
    p=0
    while [ "$p" -lt "$PARTS" ]; do
        pdir="$dir/p$p"
        if [ ! -d "$pdir" ]; then
            echo "torture: missing partition dir $pdir" >&2
            exit 1
        fi
        if ! "$bin" replay -journal "$pdir" >"$workdir/replay.$iter.p$p.log" 2>&1; then
            echo "torture: replay of $pdir FAILED after kill -9:" >&2
            cat "$workdir/replay.$iter.p$p.log" >&2
            exit 1
        fi
        segs=$(ls "$pdir"/wal-*.log 2>/dev/null | wc -l)
        snaps=$(ls "$pdir"/snap-*.snap 2>/dev/null | wc -l)
        [ "$segs" -gt 1 ] && seen_rotation=1
        [ "$snaps" -ge 1 ] && seen_snapshot=1
        echo "torture:   p$p clean ($segs segments, $snaps snapshots)"
        p=$((p + 1))
    done

    if [ "$iter" -ge "$MIN_ITERS" ] && [ "$seen_rotation" -eq 1 ] && [ "$seen_snapshot" -eq 1 ]; then
        break
    fi
    if [ "$iter" -ge "$MAX_ITERS" ]; then
        echo "torture: $MAX_ITERS iterations without covering both kill windows (rotation=$seen_rotation snapshot=$seen_snapshot)" >&2
        exit 1
    fi
done

echo "torture: PASS — $iter kill -9 iterations, every partition replayed clean (rotations and snapshots both exercised)"
