#!/bin/sh
# End-to-end smoke of the fleet operations surface: build the real
# binary, start `secureangle serve` with the ops endpoint on, then from
# the outside (a) validate /metrics parses as Prometheus exposition and
# /status as the JSON status document (scripts/promcheck), (b) exercise
# the enrollment runbook — mint a token, list it, connect nothing, and
# revoke it — and (c) render `secureangle status` like an operator
# would. Fails if any step does.
#
# Usage: scripts/ops_smoke.sh [listen-port] [ops-port]
set -eu

port="${1:-17117}"
ops_port="${2:-17118}"
tmp="$(mktemp -d)"
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "== build"
go build -o "$tmp/secureangle" ./cmd/secureangle
go build -o "$tmp/promcheck" ./scripts/promcheck

echo "== serve -ops (listen :$port, ops :$ops_port)"
"$tmp/secureangle" serve -listen "127.0.0.1:$port" \
    -ops "127.0.0.1:$ops_port" > "$tmp/serve.log" 2>&1 &
pid=$!

# Wait for the ops endpoint to come up (the controller serves it
# immediately after the fence listener).
i=0
until "$tmp/promcheck" "127.0.0.1:$ops_port" > "$tmp/promcheck.log" 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "ops endpoint never became healthy:"
        cat "$tmp/promcheck.log"
        echo "--- serve log:"
        cat "$tmp/serve.log"
        exit 1
    fi
    kill -0 "$pid" 2>/dev/null || { echo "serve exited:"; cat "$tmp/serve.log"; exit 1; }
    sleep 0.2
done
cat "$tmp/promcheck.log"

echo "== enrollment runbook: mint, list, revoke"
"$tmp/secureangle" enroll -ops "127.0.0.1:$ops_port" ap1 | tee "$tmp/enroll.log"
grep -q '^token: [0-9a-f]\{32\}$' "$tmp/enroll.log" || { echo "no token minted"; exit 1; }
"$tmp/secureangle" enroll -ops "127.0.0.1:$ops_port" | grep -qx 'ap1' || { echo "ap1 not listed"; exit 1; }
"$tmp/secureangle" enroll -ops "127.0.0.1:$ops_port" -revoke ap1
"$tmp/secureangle" enroll -ops "127.0.0.1:$ops_port" | grep -qx 'no enrolled APs' || { echo "revoke did not take"; exit 1; }

echo "== operator status view"
"$tmp/secureangle" status -ops "127.0.0.1:$ops_port"

echo "== shutdown"
kill "$pid"
wait "$pid" 2>/dev/null || true
pid=""
echo "ops smoke: OK"
