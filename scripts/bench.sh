#!/bin/sh
# Run the headline benchmarks and write BENCH_PR${PR}.json — one file
# per PR, uploaded as a CI artifact, so perf regressions show up as a
# diffable series. After writing, print a side-by-side delta against
# the most recent previous BENCH_*.json in the repo root.
#
# Usage: scripts/bench.sh [output.json]
#   PR=7 scripts/bench.sh          -> BENCH_PR7.json
#   scripts/bench.sh custom.json   -> custom.json (PR still stamped)
# Benchtime can be tuned via BENCHTIME (default 1s).
set -eu

pr="${PR:-10}"
out="${1:-BENCH_PR${pr}.json}"
benchtime="${BENCHTIME:-1s}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# The headline set: per-packet pipeline, fusion ingest, defense
# directive, journal append + group commit (each package's hot path),
# the ops metrics update the first four carry, partitioned ingest at
# 1/4/16 partitions (per-report and batched), the replication cursor's
# streaming throughput, and the per-packet trace span record.
go test -run '^$' -benchmem -benchtime "$benchtime" \
    -bench 'BenchmarkPipelinePerPacket$' . | tee -a "$tmp"
go test -run '^$' -benchmem -benchtime "$benchtime" \
    -bench 'BenchmarkFusionIngest$' ./internal/fusion | tee -a "$tmp"
go test -run '^$' -benchmem -benchtime "$benchtime" \
    -bench 'BenchmarkDefenseDirective$' ./internal/defense | tee -a "$tmp"
go test -run '^$' -benchmem -benchtime "$benchtime" \
    -bench 'BenchmarkJournalAppend$' ./internal/journal | tee -a "$tmp"
go test -run '^$' -benchmem -benchtime "$benchtime" \
    -bench 'BenchmarkJournalAppendBatch$' ./internal/journal | tee -a "$tmp"
go test -run '^$' -benchmem -benchtime "$benchtime" \
    -bench 'BenchmarkMetricsCounter$' ./internal/ops | tee -a "$tmp"
# The partition benches run at a fixed iteration count, not adaptive
# time: every op mints a fresh client, so a sub-bench's live heap (and
# GC share) scales with its iteration count, and adaptive -benchtime
# hands each parts= variant a different count — making the in-file
# parts=1/4/16 comparison measure iteration luck instead of routing
# cost. A fixed count gives every variant the same client population.
go test -run '^$' -benchmem -benchtime "${PARTITION_BENCHTIME:-200000x}" \
    -bench 'BenchmarkPartitionIngest$' ./internal/partition | tee -a "$tmp"
go test -run '^$' -benchmem -benchtime "${PARTITION_BENCHTIME:-200000x}" \
    -bench 'BenchmarkPartitionIngestBatch$' ./internal/partition | tee -a "$tmp"
go test -run '^$' -benchmem -benchtime "$benchtime" \
    -bench 'BenchmarkReplicationCursor$' ./internal/journal | tee -a "$tmp"
go test -run '^$' -benchmem -benchtime "$benchtime" \
    -bench 'BenchmarkTraceSpan$' ./internal/trace | tee -a "$tmp"

# Find the newest previous trajectory file (highest PR number below
# ours) before the new file lands.
prev=""
for f in BENCH_PR*.json; do
    [ -e "$f" ] || continue
    [ "$f" = "$out" ] && continue
    n="${f#BENCH_PR}"; n="${n%.json}"
    case "$n" in *[!0-9]*) continue ;; esac
    if [ "$n" -lt "$pr" ]; then
        if [ -z "$prev" ]; then prev="$f"; else
            pn="${prev#BENCH_PR}"; pn="${pn%.json}"
            [ "$n" -gt "$pn" ] && prev="$f"
        fi
    fi
done

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v go="$(go env GOVERSION)" -v pr="$pr" '
BEGIN { n = 0 }
/^pkg:/ { pkg = $2 }
/^Benchmark/ {
    name = $1; iters = $2
    ns = ""; bytes = ""; allocs = ""
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "B/op") bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    line = sprintf("    {\"pkg\": \"%s\", \"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", pkg, name, iters, ns)
    if (bytes != "") line = line sprintf(", \"bytes_per_op\": %s", bytes)
    if (allocs != "") line = line sprintf(", \"allocs_per_op\": %s", allocs)
    line = line "}"
    results[n++] = line
}
END {
    printf "{\n  \"pr\": %s,\n  \"date\": \"%s\", \"go\": \"%s\",\n  \"benchmarks\": [\n", pr, date, go
    for (i = 0; i < n; i++) printf "%s%s\n", results[i], (i < n - 1 ? "," : "")
    print "  ]\n}"
}
' "$tmp" > "$out"

echo "wrote $out:"
cat "$out"

if [ -n "$prev" ]; then
    echo
    echo "delta vs $prev:"
    awk -v prevfile="$prev" -v curfile="$out" '
    function parse(file, dest,   line, name, ns, bytes, allocs) {
        while ((getline line < file) > 0) {
            if (line !~ /"name":/) continue
            name = line; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
            ns = line; sub(/.*"ns_per_op": /, "", ns); sub(/[,}].*/, "", ns)
            bytes = "-"; allocs = "-"
            if (line ~ /"bytes_per_op":/) { bytes = line; sub(/.*"bytes_per_op": /, "", bytes); sub(/[,}].*/, "", bytes) }
            if (line ~ /"allocs_per_op":/) { allocs = line; sub(/.*"allocs_per_op": /, "", allocs); sub(/[,}].*/, "", allocs) }
            dest[name] = ns "|" bytes "|" allocs
        }
        close(file)
    }
    BEGIN {
        parse(prevfile, old); parse(curfile, cur)
        printf "%-30s %14s %14s %9s %12s %12s %10s\n", "benchmark", "old ns/op", "new ns/op", "speedup", "old B/op", "new B/op", "allocs"
        for (name in cur) {
            split(cur[name], c, "|")
            if (name in old) {
                split(old[name], o, "|")
                ratio = (o[1] + 0 > 0) ? sprintf("%.2fx", o[1] / c[1]) : "-"
                da = (o[3] != "-" && c[3] != "-") ? o[3] "->" c[3] : "-"
                printf "%-30s %14s %14s %9s %12s %12s %10s\n", name, o[1], c[1], ratio, o[2], c[2], da
            } else {
                printf "%-30s %14s %14s %9s %12s %12s %10s\n", name, "-", c[1], "new", "-", c[2], c[3]
            }
        }
    }'
fi
