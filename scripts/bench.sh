#!/bin/sh
# Run the headline benchmarks and write BENCH_PR5.json — the start of
# the bench trajectory (one BENCH_PRn.json per PR, uploaded as a CI
# artifact, so perf regressions show up as a diffable series).
#
# Usage: scripts/bench.sh [output.json]
# Benchtime can be tuned via BENCHTIME (default 1s).
set -eu

out="${1:-BENCH_PR5.json}"
benchtime="${BENCHTIME:-1s}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# The headline set: per-packet pipeline, fusion ingest, defense
# directive, journal append (each package's hot path).
go test -run '^$' -benchmem -benchtime "$benchtime" \
    -bench 'BenchmarkPipelinePerPacket$' . | tee -a "$tmp"
go test -run '^$' -benchmem -benchtime "$benchtime" \
    -bench 'BenchmarkFusionIngest$' ./internal/fusion | tee -a "$tmp"
go test -run '^$' -benchmem -benchtime "$benchtime" \
    -bench 'BenchmarkDefenseDirective$' ./internal/defense | tee -a "$tmp"
go test -run '^$' -benchmem -benchtime "$benchtime" \
    -bench 'BenchmarkJournalAppend$' ./internal/journal | tee -a "$tmp"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v go="$(go env GOVERSION)" '
BEGIN { n = 0 }
/^pkg:/ { pkg = $2 }
/^Benchmark/ {
    name = $1; iters = $2
    ns = ""; bytes = ""; allocs = ""
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "B/op") bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    line = sprintf("    {\"pkg\": \"%s\", \"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", pkg, name, iters, ns)
    if (bytes != "") line = line sprintf(", \"bytes_per_op\": %s", bytes)
    if (allocs != "") line = line sprintf(", \"allocs_per_op\": %s", allocs)
    line = line "}"
    results[n++] = line
}
END {
    printf "{\n  \"pr\": 5,\n  \"date\": \"%s\", \"go\": \"%s\",\n  \"benchmarks\": [\n", date, go
    for (i = 0; i < n; i++) printf "%s%s\n", results[i], (i < n - 1 ? "," : "")
    print "  ]\n}"
}
' "$tmp" > "$out"

echo "wrote $out:"
cat "$out"
