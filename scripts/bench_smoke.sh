#!/bin/sh
# Fast perf-regression gate for CI: run the trajectory benchmarks at
# fixed low iteration counts and fail if any ns/op regresses more than
# 2x against the committed baseline JSON (the newest BENCH_PR*.json in
# the repo root, or $1 if given), or if a zero-/low-alloc fast path
# exceeds its hard allocs/op budget (see the budget table below). The per-packet pipeline runs 100
# iterations (~300 us/op); the sub-microsecond hot paths get enough
# iterations to measure >= 10 ms of real work, or warmup noise would
# dominate. Fixed counts are noisy, but a 2x bar is far above CI
# jitter, so this catches real cliffs — an accidental O(n^2), a lost
# cache, a sync.Pool that stopped pooling — without the cost or
# flakiness of a full benchmark run.
#
# Usage: scripts/bench_smoke.sh [baseline.json]
set -eu

baseline="${1:-}"
if [ -z "$baseline" ]; then
    best=-1
    for f in BENCH_PR*.json; do
        [ -e "$f" ] || continue
        n="${f#BENCH_PR}"; n="${n%.json}"
        case "$n" in *[!0-9]*) continue ;; esac
        if [ "$n" -gt "$best" ]; then best="$n"; baseline="$f"; fi
    done
fi
if [ -z "$baseline" ] || [ ! -e "$baseline" ]; then
    echo "bench_smoke: no baseline BENCH_PR*.json found" >&2
    exit 1
fi
echo "bench_smoke: baseline $baseline"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -benchmem -benchtime 100x \
    -bench 'BenchmarkPipelinePerPacket$' . | tee -a "$tmp"
go test -run '^$' -benchmem -benchtime 20000x \
    -bench 'BenchmarkFusionIngest$' ./internal/fusion | tee -a "$tmp"
go test -run '^$' -benchmem -benchtime 50000x \
    -bench 'BenchmarkDefenseDirective$' ./internal/defense | tee -a "$tmp"
go test -run '^$' -benchmem -benchtime 50000x \
    -bench 'BenchmarkJournalAppend$' ./internal/journal | tee -a "$tmp"
go test -run '^$' -benchmem -benchtime 1000x \
    -bench 'BenchmarkJournalAppendBatch$' ./internal/journal | tee -a "$tmp"
go test -run '^$' -benchmem -benchtime 500000x \
    -bench 'BenchmarkMetricsCounter$' ./internal/ops | tee -a "$tmp"
go test -run '^$' -benchmem -benchtime 20000x \
    -bench 'BenchmarkPartitionIngest$' ./internal/partition | tee -a "$tmp"
go test -run '^$' -benchmem -benchtime 20000x \
    -bench 'BenchmarkPartitionIngestBatch$' ./internal/partition | tee -a "$tmp"
go test -run '^$' -benchmem -benchtime 20x \
    -bench 'BenchmarkReplicationCursor$' ./internal/journal | tee -a "$tmp"
go test -run '^$' -benchmem -benchtime 500000x \
    -bench 'BenchmarkTraceSpan$' ./internal/trace | tee -a "$tmp"

awk -v baseline="$baseline" '
function parse(file,   line, name, ns) {
    while ((getline line < file) > 0) {
        if (line !~ /"name":/) continue
        name = line; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
        sub(/-[0-9]+$/, "", name)  # strip -GOMAXPROCS suffix if present
        ns = line; sub(/.*"ns_per_op": /, "", ns); sub(/[,}].*/, "", ns)
        base[name] = ns + 0
    }
    close(file)
}
BEGIN {
    parse(baseline); bad = 0
    # Hard allocs/op ceilings for the zero-/low-alloc fast paths. These
    # are absolute (not baseline-relative): pooling regressions show up
    # as order-of-magnitude alloc jumps, so generous ceilings stay far
    # from jitter while still catching a sync.Pool that stopped pooling
    # or a scratch buffer that started escaping.
    budget["BenchmarkReplicationCursor"] = 100          # ~20 measured; 10063 before pooling
    budget["BenchmarkJournalAppendBatch/interval"] = 4  # 0 measured (64-record batch)
    budget["BenchmarkJournalAppendBatch/always"] = 4    # 0 measured
    budget["BenchmarkPartitionIngestBatch/parts=1"] = 16   # ~5 measured
    budget["BenchmarkPartitionIngestBatch/parts=4"] = 16
    budget["BenchmarkPartitionIngestBatch/parts=16"] = 16
    budget["BenchmarkTraceSpan"] = 0  # hard zero: the span record sits on every packet
}
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = ""; allocs = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i + 0
        if ($(i+1) == "allocs/op") allocs = $i + 0
    }
    if (allocs != "" && name in budget) {
        averdict = allocs > budget[name] ? "ALLOC REGRESSION" : "ok"
        printf "%-42s allocs/op %6d (budget %6d)  %s\n", name, allocs, budget[name], averdict
        if (allocs > budget[name]) bad = 1
    }
    if (ns == "" || !(name in base)) next
    ratio = base[name] > 0 ? ns / base[name] : 0
    verdict = ratio > 2.0 ? "REGRESSION" : "ok"
    printf "%-42s baseline %12.0f ns/op  now %12.0f ns/op  %.2fx  %s\n", name, base[name], ns, ratio, verdict
    if (ratio > 2.0) bad = 1
}
END {
    if (bad) { print "bench_smoke: regression vs " baseline " (ns/op > 2x or allocs/op over budget)"; exit 1 }
    print "bench_smoke: all within 2x of " baseline " and alloc budgets"
}
' "$tmp"
