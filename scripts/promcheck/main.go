// Command promcheck validates a running controller's operations
// endpoint: /metrics must be well-formed Prometheus text exposition
// (parsed with the same ops.CheckExposition the unit tests use) with a
// sane minimum catalogue, and /status must be valid JSON with the
// status document's required sections. CI's ops e2e smoke runs it
// against a freshly-started `secureangle serve -ops`.
//
// Usage: promcheck [-min-families N] [-min-samples N] host:port
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"secureangle/internal/ops"
)

func main() {
	minFamilies := flag.Int("min-families", 10, "minimum metric families /metrics must expose")
	minSamples := flag.Int("min-samples", 10, "minimum samples /metrics must expose")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: promcheck [-min-families N] [-min-samples N] host:port")
		os.Exit(2)
	}
	base := "http://" + flag.Arg(0)
	client := &http.Client{Timeout: 10 * time.Second}

	body, ct, err := get(client, base+"/metrics")
	if err != nil {
		fail("GET /metrics: %v", err)
	}
	if want := "text/plain"; len(ct) < len(want) || ct[:len(want)] != want {
		fail("/metrics content type %q, want text/plain exposition", ct)
	}
	st, err := ops.CheckExposition(bytes.NewReader(body))
	if err != nil {
		fail("/metrics is not valid exposition: %v", err)
	}
	if st.Families < *minFamilies || st.Samples < *minSamples {
		fail("/metrics too sparse: %d families / %d samples (want >= %d / >= %d)",
			st.Families, st.Samples, *minFamilies, *minSamples)
	}

	body, ct, err = get(client, base+"/status")
	if err != nil {
		fail("GET /status: %v", err)
	}
	if want := "application/json"; len(ct) < len(want) || ct[:len(want)] != want {
		fail("/status content type %q, want application/json", ct)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(body, &doc); err != nil {
		fail("/status is not JSON: %v", err)
	}
	for _, key := range []string{"time", "proto_version", "fusion", "defense", "aps", "threats"} {
		if _, ok := doc[key]; !ok {
			fail("/status missing %q section", key)
		}
	}

	fmt.Printf("ok: /metrics %d families, %d samples; /status %d sections\n",
		st.Families, st.Samples, len(doc))
}

func get(client *http.Client, url string) (body []byte, contentType string, err error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, "", fmt.Errorf("%s", resp.Status)
	}
	body, err = io.ReadAll(resp.Body)
	return body, resp.Header.Get("Content-Type"), err
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "promcheck: "+format+"\n", args...)
	os.Exit(1)
}
