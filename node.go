package secureangle

// The v2 API surface: a long-lived Node built with functional options,
// context threaded end to end, a streaming ingestion handle with
// backpressure, and the typed error taxonomy. The v1 entry points
// (NewTestbedAP*, ObserveFrame*) remain as thin adapters over this
// constructor.

import (
	"context"

	"secureangle/internal/core"
	"secureangle/internal/env"
	"secureangle/internal/geom"
	"secureangle/internal/music"
	"secureangle/internal/ofdm"
	"secureangle/internal/rng"
	"secureangle/internal/signature"
	"secureangle/internal/testbed"
	"secureangle/internal/wifi"
)

// Error taxonomy re-exports: every pipeline failure is one of these
// sentinels wrapped in a *PipelineError, checked with errors.Is/As.
var (
	// ErrNotDetected: the Schmidl-Cox detector found no packet.
	ErrNotDetected = core.ErrNotDetected
	// ErrBlocked: no propagation path from transmitter to AP.
	ErrBlocked = core.ErrBlocked
	// ErrNotCalibrated: observation before the section 2.2 calibration.
	ErrNotCalibrated = core.ErrNotCalibrated
	// ErrTooFewSnapshots: capture too short for a full-rank covariance.
	ErrTooFewSnapshots = core.ErrTooFewSnapshots
	// ErrStreamClosed: Submit on a closed Stream.
	ErrStreamClosed = core.ErrStreamClosed
)

// v2 type re-exports.
type (
	// PipelineError is the structured pipeline failure: {Stage, AP, MAC}
	// around an underlying cause.
	PipelineError = core.PipelineError
	// Stream is the node's ordered, backpressured ingestion handle.
	Stream = core.Stream
	// StreamResult is one ordered Stream output.
	StreamResult = core.StreamResult
	// Estimator computes pseudospectra from covariances (the music
	// package's interface; MUSIC, Bartlett, MVDR all satisfy it).
	Estimator = music.Estimator
	// MatchPolicy is the signature accept/flag threshold.
	MatchPolicy = signature.MatchPolicy
	// Frame is an 802.11 MAC frame.
	Frame = wifi.Frame
	// Modulation selects the OFDM constellation of a synthesised frame.
	Modulation = ofdm.Modulation
)

// Node is a long-lived SecureAngle service instance: one AP pipeline
// plus its environment, constructed by New with functional options and
// driven through context-aware methods. It wraps the same core.AP the
// v1 facade exposes (AP() hands it out for migration), so v1 and v2
// calls may be mixed on one node.
type Node struct {
	ap *core.AP
	e  *env.Environment
}

// nodeOptions collects the functional-option state for New.
type nodeOptions struct {
	name string
	pos  geom.Point
	arr  *Array
	e    *env.Environment
	seed int64
	cfg  core.Config
}

// Option configures New.
type Option func(*nodeOptions)

// WithName sets the node's AP name (default "node").
func WithName(name string) Option { return func(o *nodeOptions) { o.name = name } }

// WithPosition places the AP (default the testbed's AP1 corner).
func WithPosition(p Point) Option { return func(o *nodeOptions) { o.pos = p } }

// WithArray selects the antenna array (default the paper's octagonal
// 8-antenna circular array).
func WithArray(arr *Array) Option { return func(o *nodeOptions) { o.arr = arr } }

// WithEnvironment sets the propagation scene (default the Figure 4
// testbed building).
func WithEnvironment(e *Environment) Option { return func(o *nodeOptions) { o.e = e } }

// WithSeed seeds the node's front-end impairments and noise
// deterministically (default 1).
func WithSeed(s int64) Option { return func(o *nodeOptions) { o.seed = s } }

// WithConfig replaces the whole pipeline Config — the adapter bridge
// for v1 callers holding a Config value. Options applied after it
// override individual fields.
func WithConfig(cfg Config) Option { return func(o *nodeOptions) { o.cfg = cfg } }

// WithEstimator selects the pseudospectrum estimator (default MUSIC
// with MDL-selected source count).
func WithEstimator(est Estimator) Option { return func(o *nodeOptions) { o.cfg.Estimator = est } }

// WithWorkers bounds the batch/stream worker pool (0 = GOMAXPROCS).
func WithWorkers(n int) Option { return func(o *nodeOptions) { o.cfg.Workers = n } }

// WithPolicy sets the spoof-check match policy.
func WithPolicy(p MatchPolicy) Option { return func(o *nodeOptions) { o.cfg.Policy = p } }

// WithGridStep sets the pseudospectrum angular resolution in degrees.
func WithGridStep(deg float64) Option { return func(o *nodeOptions) { o.cfg.GridStepDeg = deg } }

// WithCalSamples sets the calibration capture length.
func WithCalSamples(n int) Option { return func(o *nodeOptions) { o.cfg.CalSamples = n } }

// WithDeferredCalibration postpones the section 2.2 calibration:
// observations fail with ErrNotCalibrated until node.Calibrate runs.
func WithDeferredCalibration() Option {
	return func(o *nodeOptions) { o.cfg.DeferCalibration = true }
}

// New builds a Node. Unset options take the paper-testbed defaults, so
// secureangle.New() alone yields a working AP1. Contradictory settings
// (negative workers, non-positive grid step, an unusable match policy)
// return a validation error rather than panicking.
func New(opts ...Option) (*Node, error) {
	o := nodeOptions{
		name: "node",
		pos:  testbed.AP1,
		seed: 1,
		cfg:  core.DefaultConfig(),
	}
	for _, opt := range opts {
		opt(&o)
	}
	if o.arr == nil {
		o.arr = testbed.CircularArray()
	}
	if o.e == nil {
		o.e, _ = testbed.Building()
	}
	cfg := o.cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	fe := testbed.NewAPFrontEnd(o.arr, o.pos, rng.New(o.seed))
	return &Node{ap: core.NewAP(o.name, fe, o.e, cfg), e: o.e}, nil
}

// AP exposes the underlying core AP — the bridge to the v1 surface
// (Enroll, Identify, ProcessStreams, ...).
func (n *Node) AP() *AP { return n.ap }

// Environment returns the node's propagation scene.
func (n *Node) Environment() *Environment { return n.e }

// Calibrate runs the deferred section 2.2 calibration (see
// WithDeferredCalibration). Not concurrency-safe with observations.
func (n *Node) Calibrate() { n.ap.Calibrate() }

// Calibrated reports whether calibration offsets are in place.
func (n *Node) Calibrated() bool { return n.ap.Calibrated() }

// Observe receives one transmission from tx and runs the full pipeline
// under ctx.
func (n *Node) Observe(ctx context.Context, tx Point, baseband []complex128) (*Report, error) {
	return n.ap.ObserveContext(ctx, tx, baseband)
}

// ObserveBatch runs a batch on the worker pool under ctx; cancellation
// stops dispatch and marks undispatched items with ctx's error.
func (n *Node) ObserveBatch(ctx context.Context, items []BatchItem) []BatchResult {
	return n.ap.ObserveBatchContext(ctx, items)
}

// ProcessStreamsBatch runs the estimation pipeline on raw captures
// under ctx (see AP.ProcessStreamsBatch).
func (n *Node) ProcessStreamsBatch(ctx context.Context, streamSets [][][]complex128) []BatchResult {
	return n.ap.ProcessStreamsBatchContext(ctx, streamSets)
}

// ProcessFrame observes one MAC frame and applies the spoof check.
func (n *Node) ProcessFrame(ctx context.Context, tx Point, frame *Frame, mod Modulation) (*FrameReport, error) {
	return n.ap.ProcessFrameContext(ctx, tx, frame, mod)
}

// ProcessFrameBatch is the batch form of ProcessFrame under ctx.
func (n *Node) ProcessFrameBatch(ctx context.Context, items []FrameBatchItem) []FrameBatchResult {
	return n.ap.ProcessFrameBatchContext(ctx, items)
}

// Stream opens the node's always-on ingestion handle: Submit with
// backpressure (at most depth in flight), results in submission order,
// shut down by Close or ctx cancellation. depth <= 0 picks a default.
func (n *Node) Stream(ctx context.Context, depth int) *Stream {
	return n.ap.Stream(ctx, depth)
}

// ObserveTestbedFrame synthesises one QPSK uplink data frame from the
// given testbed client ID at pos and observes it — the v2 form of the
// package-level ObserveFrame helper.
func (n *Node) ObserveTestbedFrame(ctx context.Context, clientID int, pos Point) (*Report, error) {
	bb, err := testbed.FrameBaseband(testbed.UplinkFrame(clientID, 1, uplinkPayload), ofdm.QPSK)
	if err != nil {
		return nil, err
	}
	return n.Observe(ctx, pos, bb)
}

// TestbedBatchItem builds the BatchItem for a testbed client's QPSK
// uplink frame — the per-item half of ObserveFrameBatch, usable with
// both ObserveBatch and Stream.Submit.
func TestbedBatchItem(c TestbedClient, seq uint16) (BatchItem, error) {
	bb, err := testbed.FrameBaseband(testbed.UplinkFrame(c.ID, seq, uplinkPayload), ofdm.QPSK)
	if err != nil {
		return BatchItem{}, err
	}
	return BatchItem{TX: c.Pos, Baseband: bb}, nil
}

// ApplyDirective applies one controller defense directive at this
// node's AP: quarantine marks the MAC for dropping (ProcessFrame
// stamps its frames Quarantined), null-steer additionally computes
// transmit weights with a spatial null toward the threat's bearing,
// and allow releases. See the Countermeasure type for what is applied.
func (n *Node) ApplyDirective(d Directive) (Countermeasure, error) {
	return n.ap.ApplyDirective(d)
}

// Countermeasures snapshots the node's active countermeasures.
func (n *Node) Countermeasures() []Countermeasure { return n.ap.Countermeasures() }

// CountermeasureFor returns the active countermeasure for one MAC.
func (n *Node) CountermeasureFor(mac MAC) (Countermeasure, bool) {
	return n.ap.CountermeasureFor(mac)
}

// Enroll registers (or replaces) a certified signature for a MAC.
func (n *Node) Enroll(mac MAC, sig *Signature) { n.ap.Enroll(mac, sig) }

// Known reports whether a MAC has a certified signature.
func (n *Node) Known(mac MAC) bool { return n.ap.Known(mac) }

// StoredSignature returns the current certified signature for a MAC.
func (n *Node) StoredSignature(mac MAC) (*Signature, bool) { return n.ap.StoredSignature(mac) }
