package secureangle

import (
	"context"
	"errors"
	"testing"

	"secureangle/internal/geom"
)

// TestNodeQuickstart exercises the v2 surface exactly as README's API
// v2 section shows it.
func TestNodeQuickstart(t *testing.T) {
	node, err := New(WithName("ap1"), WithSeed(42), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	client, err := Client(5)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rep, err := node.ObserveTestbedFrame(ctx, client.ID, client.Pos)
	if err != nil {
		t.Fatal(err)
	}
	truth := geom.BearingDeg(AP1, client.Pos)
	if geom.AngularDistDeg(rep.BearingDeg, truth) > 4 {
		t.Errorf("bearing %v, truth %v", rep.BearingDeg, truth)
	}
}

// TestNodeMatchesV1Adapter: the v1 constructor is a thin adapter over
// New, so identically-seeded v1 and v2 instances produce identical
// reports.
func TestNodeMatchesV1Adapter(t *testing.T) {
	node, err := New(WithName("ap1"), WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	ap := NewTestbedAP("ap1", AP1, 42)
	client, err := Client(5)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := node.ObserveTestbedFrame(context.Background(), client.ID, client.Pos)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := ObserveFrame(ap, client.ID, client.Pos)
	if err != nil {
		t.Fatal(err)
	}
	if v1.BearingDeg != v2.BearingDeg {
		t.Errorf("v1 bearing %v != v2 bearing %v", v1.BearingDeg, v2.BearingDeg)
	}
}

// TestNodeOptionValidation: contradictory options surface as errors
// from New, not panics.
func TestNodeOptionValidation(t *testing.T) {
	if _, err := New(WithWorkers(-1)); err == nil {
		t.Error("negative workers accepted")
	}
	if _, err := New(WithGridStep(-1)); err == nil {
		t.Error("negative grid step accepted")
	}
	if _, err := New(WithPolicy(MatchPolicy{MaxDistance: -4})); err == nil {
		t.Error("broken policy accepted")
	}
}

// TestNodeDeferredCalibration: the option wires through to the typed
// taxonomy.
func TestNodeDeferredCalibration(t *testing.T) {
	node, err := New(WithDeferredCalibration())
	if err != nil {
		t.Fatal(err)
	}
	client, err := Client(5)
	if err != nil {
		t.Fatal(err)
	}
	_, err = node.ObserveTestbedFrame(context.Background(), client.ID, client.Pos)
	if !errors.Is(err, ErrNotCalibrated) {
		t.Fatalf("err %v, want ErrNotCalibrated", err)
	}
	node.Calibrate()
	if _, err := node.ObserveTestbedFrame(context.Background(), client.ID, client.Pos); err != nil {
		t.Fatalf("post-calibration: %v", err)
	}
}

// TestErrorTaxonomyAcceptance is the issue's acceptance criterion:
// errors.Is(err, secureangle.ErrNotDetected) works through both
// BatchResult and the streaming Results channel, with the structured
// PipelineError available via errors.As on both paths.
func TestErrorTaxonomyAcceptance(t *testing.T) {
	node, err := New(WithName("ap1"), WithSeed(7), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	client, err := Client(5)
	if err != nil {
		t.Fatal(err)
	}
	good, err := TestbedBatchItem(client, 1)
	if err != nil {
		t.Fatal(err)
	}
	silent := BatchItem{TX: client.Pos, Baseband: make([]complex128, len(good.Baseband))}
	items := []BatchItem{good, silent}
	ctx := context.Background()

	// Through BatchResult.
	res := node.ObserveBatch(ctx, items)
	if res[0].Err != nil {
		t.Fatalf("good item failed: %v", res[0].Err)
	}
	if !errors.Is(res[1].Err, ErrNotDetected) {
		t.Fatalf("batch err %v, want errors.Is ErrNotDetected", res[1].Err)
	}
	var pe *PipelineError
	if !errors.As(res[1].Err, &pe) || pe.AP != "ap1" {
		t.Fatalf("batch err %v, want *PipelineError from ap1", res[1].Err)
	}

	// Through the streaming Results channel.
	s := node.Stream(ctx, 4)
	var got []StreamResult
	done := make(chan struct{})
	go func() {
		defer close(done)
		for r := range s.Results() {
			got = append(got, r)
		}
	}()
	for _, it := range items {
		if _, err := s.Submit(ctx, it); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	<-done
	if len(got) != 2 {
		t.Fatalf("stream delivered %d results", len(got))
	}
	if got[0].Err != nil {
		t.Fatalf("stream good item failed: %v", got[0].Err)
	}
	if !errors.Is(got[1].Err, ErrNotDetected) {
		t.Fatalf("stream err %v, want errors.Is ErrNotDetected", got[1].Err)
	}
	pe = nil
	if !errors.As(got[1].Err, &pe) || pe.Stage == "" {
		t.Fatalf("stream err %v, want staged *PipelineError", got[1].Err)
	}
}
