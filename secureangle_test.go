package secureangle

import (
	"testing"

	"secureangle/internal/geom"
)

// The facade tests exercise the public API exactly as README's quickstart
// shows it, so the documented entry points cannot rot.

func TestFacadeQuickstart(t *testing.T) {
	ap := NewTestbedAP("ap1", AP1, 42)
	client, err := Client(5)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ObserveFrame(ap, client.ID, client.Pos)
	if err != nil {
		t.Fatal(err)
	}
	truth := geom.BearingDeg(AP1, client.Pos)
	if geom.AngularDistDeg(rep.BearingDeg, truth) > 4 {
		t.Errorf("bearing %v, truth %v", rep.BearingDeg, truth)
	}
	if rep.Sig == nil || len(rep.Sig.P) == 0 {
		t.Error("missing signature")
	}
}

func TestFacadeTestbed(t *testing.T) {
	e, shell := Testbed()
	if e == nil || len(shell) != 4 {
		t.Fatal("testbed construction")
	}
	if !shell.Contains(AP1) || !shell.Contains(AP2) || !shell.Contains(AP3) {
		t.Error("AP positions outside the shell")
	}
	if _, err := Client(0); err == nil {
		t.Error("client 0 accepted")
	}
}

func TestFacadeArrays(t *testing.T) {
	if CircularArray().N() != 8 || LinearArray().N() != 8 {
		t.Error("array sizes")
	}
}

func TestFacadeTriangulate(t *testing.T) {
	target := Point{X: 10, Y: 9}
	obs := []BearingObs{
		{AP: AP1, BearingDeg: geom.BearingDeg(AP1, target)},
		{AP: AP2, BearingDeg: geom.BearingDeg(AP2, target)},
	}
	p, err := Triangulate(obs)
	if err != nil {
		t.Fatal(err)
	}
	if p.Dist(target) > 1e-6 {
		t.Errorf("triangulated %v", p)
	}
}

func TestFacadeSpoofFlow(t *testing.T) {
	ap := NewTestbedAP("ap1", AP1, 7)
	victim, _ := Client(5)
	attacker, _ := Client(9)

	rep, err := ObserveFrame(ap, victim.ID, victim.Pos)
	if err != nil {
		t.Fatal(err)
	}
	var mac MAC = MAC{0x02, 0, 0, 0, 0, 0x05}
	ap.Enroll(mac, rep.Sig)
	if !ap.Known(mac) {
		t.Fatal("enrollment failed")
	}
	// An observation from the attacker's position must not match.
	atk, err := ObserveFrame(ap, victim.ID, attacker.Pos)
	if err != nil {
		t.Fatal(err)
	}
	stored, _ := ap.StoredSignature(mac)
	_ = stored
	if atk.Sig == nil {
		t.Fatal("attacker observation missing signature")
	}
}

func TestFacadeDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.GridStepDeg != 1 || cfg.CalSamples != 2000 {
		t.Errorf("defaults: %+v", cfg)
	}
}
