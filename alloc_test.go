package secureangle

import (
	"math"
	"testing"
)

// TestPacketPathAllocs pins the steady-state allocation count of the
// full per-packet pipeline — receive synthesis, detection, covariance,
// eigendecomposition, pseudospectrum, grid-free bearing, signature —
// at the zero-alloc overhaul's level. Everything transient lives in the
// AP's pooled scratch arena; only the Report and the slices it hands
// the caller (spectrum values, signature energy) may allocate. A
// regression here means a scratch buffer escaped the pool or a cache
// stopped hitting.
func TestPacketPathAllocs(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("sync.Pool drops Puts under the race detector; alloc counts are unstable")
	}
	ap := NewTestbedAP("alloc", AP1, 1)
	client, err := Client(5)
	if err != nil {
		t.Fatal(err)
	}
	// Warm every cache and pool: baseband modulation, clean-capture
	// replay, scratch arena growth, sync.Pool population.
	for i := 0; i < 5; i++ {
		if _, err := ObserveFrame(ap, client.ID, client.Pos); err != nil {
			t.Fatal(err)
		}
	}
	// Take the best of a few attempts: a GC pass landing inside one
	// measurement window empties the scratch sync.Pool and the refill
	// shows up as phantom allocs. A real regression fails every attempt.
	best := math.Inf(1)
	for attempt := 0; attempt < 3 && best > 10; attempt++ {
		allocs := testing.AllocsPerRun(100, func() {
			if _, err := ObserveFrame(ap, client.ID, client.Pos); err != nil {
				t.Fatal(err)
			}
		})
		best = math.Min(best, allocs)
	}
	// Measured 5 on the overhaul; 10 is the issue's acceptance ceiling.
	if best > 10 {
		t.Errorf("ObserveFrame steady state: %.1f allocs/op, want <= 10", best)
	}
}
