module secureangle

go 1.24
