//go:build !race

package secureangle

const raceDetectorEnabled = false
