package secureangle

// The closed defense loop, end to end over real physics and real TCP:
// a spoofed frame flagged by one AP's signature check becomes a
// controller directive that a *different* AP applies as beamforming
// countermeasures, and the quarantine decays back to release without
// any operator — the acceptance path of the defense-engine refactor.

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"secureangle/internal/beamform"
	"secureangle/internal/defense"
	"secureangle/internal/netproto"
	"secureangle/internal/ofdm"
	"secureangle/internal/signature"
	"secureangle/internal/testbed"
)

func TestDefenseClosedLoopEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack integration")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	_, shell := Testbed()
	controller := NewController(&Fence{Boundary: shell, MarginM: 1.5})
	controller.DefensePolicy = DefensePolicy{
		NullSteerScore: 2, // the first confirmed spoof escalates to null-steer
		HalfLife:       300 * time.Millisecond,
		MinQuarantine:  time.Millisecond,
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	controller.Serve(ln)
	defer controller.Close()

	// Two full pipeline nodes with v2 agent sessions.
	positions := []Point{AP1, AP2}
	nodes := make([]*Node, len(positions))
	agents := make([]*netproto.Agent, len(positions))
	for i, pos := range positions {
		name := fmt.Sprintf("ap%d", i+1)
		nodes[i], err = New(WithName(name), WithPosition(pos), WithSeed(int64(700+i)))
		if err != nil {
			t.Fatal(err)
		}
		agents[i], err = netproto.DialContext(ctx, ln.Addr().String(), netproto.Hello{Name: name, Pos: pos})
		if err != nil {
			t.Fatal(err)
		}
		defer agents[i].Close()
	}
	directives := agents[1].Directives() // AP-2 is the countermeasure side
	time.Sleep(50 * time.Millisecond)    // let broadcasters register

	victim, err := Client(5)
	if err != nil {
		t.Fatal(err)
	}
	attacker, err := Client(9)
	if err != nil {
		t.Fatal(err)
	}
	mac := testbed.ClientMAC(victim.ID)

	// Train the victim's signature at both APs (and give each AP a
	// serve bearing from accepted traffic).
	for i, n := range nodes {
		for seq := uint16(1); seq <= 2; seq++ {
			fr, err := n.ProcessFrame(ctx, victim.Pos, testbed.UplinkFrame(victim.ID, seq, nil), ofdm.QPSK)
			if err != nil {
				t.Fatalf("ap%d train: %v", i+1, err)
			}
			if fr.Decision != signature.Accept {
				t.Fatalf("ap%d flagged the victim during training: %+v", i+1, fr)
			}
		}
	}

	// The spoof at AP-1: the attacker transmits with the victim's MAC
	// from across the room. AP-1's scored verdict rides the alert wire.
	spoof, err := nodes[0].ProcessFrame(ctx, attacker.Pos, testbed.UplinkFrame(victim.ID, 100, []byte("injected")), ofdm.QPSK)
	if err != nil {
		t.Fatal(err)
	}
	if spoof.Decision != signature.Flag {
		t.Fatalf("spoofed frame accepted at ap1: %+v", spoof)
	}
	if spoof.Verdict().Margin() >= 0 {
		t.Fatalf("flagged frame with non-negative margin: %+v", spoof.Verdict())
	}
	if err := agents[0].SendAlertDetail(netproto.Alert{
		APName: "ap1", MAC: spoof.MAC, Distance: spoof.Distance,
		Threshold: spoof.Threshold, BearingDeg: spoof.BearingDeg, HasBearing: true, Stage: "spoofcheck",
	}); err != nil {
		t.Fatal(err)
	}

	// The directive broadcast reaches AP-2, which applies null-steer
	// weights toward the flagged bearing and acks.
	var cm Countermeasure
	select {
	case d, ok := <-directives:
		if !ok {
			t.Fatal("directive channel closed")
		}
		if d.MAC != mac || d.Action != ActionNullSteer {
			t.Fatalf("directive = %+v", d)
		}
		if d.Stage != "spoofcheck" || d.Distance != spoof.Distance {
			t.Errorf("directive evidence = %+v", d)
		}
		cm, err = nodes[1].ApplyDirective(d.Directive)
		if err != nil {
			t.Fatal(err)
		}
		if err := agents[1].SendDirectiveAck(d.Directive); err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no directive within 10s")
	}

	// The applied weights place a deep spatial null on the flagged
	// bearing while keeping the serve direction hot (beamform.Gain is
	// the physical check: transmit array gain at each bearing).
	arr2 := nodes[1].AP().FE.Array
	if g := beamform.Gain(arr2, cm.Weights, cm.NullBearingDeg); g > 1e-10 {
		t.Errorf("gain at flagged bearing %.1f = %g, want suppressed to ~0", cm.NullBearingDeg, g)
	}
	if g := beamform.Gain(arr2, cm.Weights, cm.ServeBearingDeg); g < 1 {
		t.Errorf("gain at serve bearing %.1f = %g, want >= 1", cm.ServeBearingDeg, g)
	}

	// While quarantined, the victim MAC's frames at AP-2 are stamped
	// for dropping.
	fr, err := nodes[1].ProcessFrame(ctx, victim.Pos, testbed.UplinkFrame(victim.ID, 101, nil), ofdm.QPSK)
	if err != nil {
		t.Fatal(err)
	}
	if !fr.Quarantined {
		t.Error("quarantined MAC's frame not stamped at ap2")
	}

	// Threat state is queryable over the wire from either session.
	threats, err := agents[0].QueryThreats(ctx, netproto.Query{MAC: mac})
	if err != nil {
		t.Fatal(err)
	}
	if len(threats) != 1 || threats[0].State != ThreatQuarantine {
		t.Fatalf("threat query = %+v", threats)
	}

	// The quarantine decays to release without manual intervention; the
	// release directive clears AP-2's countermeasure.
	select {
	case d, ok := <-directives:
		if !ok {
			t.Fatal("directive channel closed awaiting release")
		}
		if d.Action != ActionAllow || d.Reporter != "decay" {
			t.Fatalf("expected decay release, got %+v", d)
		}
		if _, err := nodes[1].ApplyDirective(d.Directive); err != nil {
			t.Fatal(err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("quarantine never decayed to release")
	}
	if _, ok := nodes[1].CountermeasureFor(mac); ok {
		t.Error("countermeasure survived the release")
	}
	fr, err = nodes[1].ProcessFrame(ctx, victim.Pos, testbed.UplinkFrame(victim.ID, 102, nil), ofdm.QPSK)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Quarantined || fr.Decision != signature.Accept {
		t.Errorf("victim still penalised after release: %+v", fr)
	}

	// Counters tell the whole story.
	s := controller.Stats()
	if s.Defense.Quarantines != 1 || s.Defense.NullSteers != 1 || s.Defense.DecayReleases != 1 {
		t.Errorf("defense stats = %+v", s.Defense)
	}
	if s.DirectiveAcks != 1 {
		t.Errorf("directive acks = %d", s.DirectiveAcks)
	}
}

// TestDefenseFacadeSurface pins the root re-exports an external
// consumer builds against.
func TestDefenseFacadeSurface(t *testing.T) {
	var d Directive
	d.Action = ActionNullSteer
	if d.Action.String() != "null-steer" {
		t.Errorf("action string = %q", d.Action)
	}
	if ThreatQuarantine.String() != "quarantine" {
		t.Errorf("state string = %q", ThreatQuarantine)
	}
	if (DefensePolicy{}).WithDefaults().Validate() != nil {
		t.Error("default policy invalid through the facade")
	}
	var _ ClientThreat = defense.ClientThreat{}
	var _ DefenseStats = defense.Stats{}
	v := Verdict{Distance: 0.2, Threshold: 0.12}
	if v.Margin() >= 0 {
		t.Error("facade Verdict margin")
	}
}
