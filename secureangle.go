// Package secureangle is a from-scratch reproduction of
//
//	Jie Xiong and Kyle Jamieson, "SecureAngle: Improving Wireless
//	Security Using Angle-of-Arrival Information", HotNets-IX, 2010.
//	DOI 10.1145/1868447.1868458.
//
// SecureAngle equips a multi-antenna 802.11 access point with
// physical-layer angle-of-arrival estimation: MUSIC pseudospectra computed
// from packet-scale antenna correlation matrices serve simultaneously as
// bearing estimates (for indoor localisation and a multi-AP "virtual
// fence") and as per-client signatures (for link-layer address-spoofing
// detection) — a layer of defense in depth beneath WEP/WPA/WPA2.
//
// This root package is a small facade over the implementation packages in
// internal/: it re-exports the types a typical user touches and provides
// turnkey constructors for the paper's Figure 4 testbed. The full surface
// lives in:
//
//	internal/core        the per-AP pipeline (detect -> calibrate -> correlate -> MUSIC -> signature)
//	internal/music       MUSIC, Bartlett, MVDR, smoothing, MDL/AIC
//	internal/antenna     linear and circular array geometry and steering
//	internal/radio       receiver impairments + the section 2.2 calibration
//	internal/env         image-method multipath ray tracer with drift
//	internal/ofdm        802.11a/g-style OFDM PHY (Schmidl-Cox preamble)
//	internal/detect      Schmidl-Cox packet detection and CFO estimation
//	internal/wifi        minimal 802.11 MAC framing
//	internal/signature   AoA signatures, matching, tracking
//	internal/locate      bearing triangulation and the virtual fence
//	internal/fusion      bounded MAC-sharded bearing-fusion engine + mobility tracks
//	internal/track       alpha-beta mobility filter over fused positions
//	internal/netproto    AP -> controller fusion protocol over TCP + warm-standby replication
//	internal/partition   MAC-range partitioned engine set behind the controller
//	internal/journal     flight recorder: event WAL, snapshots, crash recovery, replay, compaction
//	internal/baseline    RSS signalprint baseline and directional attacker
//	internal/testbed     the paper's Figure 4 office and its 20 clients
//	internal/experiments drivers for Figures 5-7 and all in-text claims
//
// The quickest start (the v2 Node API — functional options, context
// threading, typed errors):
//
//	node, _ := secureangle.New(secureangle.WithName("ap1"), secureangle.WithSeed(42))
//	client, _ := secureangle.Client(5)
//	rep, err := node.ObserveTestbedFrame(ctx, client.ID, client.Pos)
//	// rep.BearingDeg, rep.Sig, rep.Spectrum ...
//	// errors.Is(err, secureangle.ErrNotDetected) etc. for failures
//
// or, as an always-on service, via the streaming handle:
//
//	s := node.Stream(ctx, 16)
//	go func() { for r := range s.Results() { ... } }()
//	s.Submit(ctx, item)
//
// The v1 call-per-packet surface (NewTestbedAP, ObserveFrame, ...)
// remains below as thin adapters over the same pipeline. See examples/
// for runnable programs and cmd/secureangle for the experiment harness
// that regenerates every figure in the paper.
package secureangle

import (
	"io"

	"secureangle/internal/antenna"
	"secureangle/internal/core"
	"secureangle/internal/defense"
	"secureangle/internal/env"
	"secureangle/internal/fusion"
	"secureangle/internal/geom"
	"secureangle/internal/journal"
	"secureangle/internal/locate"
	"secureangle/internal/music"
	"secureangle/internal/netproto"
	"secureangle/internal/ofdm"
	"secureangle/internal/ops"
	"secureangle/internal/signature"
	"secureangle/internal/testbed"
	"secureangle/internal/wifi"
)

// Core re-exports: the types a library user holds.
type (
	// AP is a SecureAngle access point: array front end, calibration,
	// detection, MUSIC, and the per-MAC signature registry.
	AP = core.AP
	// Config tunes an AP's pipeline.
	Config = core.Config
	// Report is the physical-layer result for one received packet.
	Report = core.Report
	// FrameReport extends Report with the spoof-check decision.
	FrameReport = core.FrameReport
	// Array is an antenna array geometry.
	Array = antenna.Array
	// Environment is the propagation scene (walls, obstacles, drift).
	Environment = env.Environment
	// Signature is a client's AoA signature.
	Signature = signature.Signature
	// Pseudospectrum is likelihood versus bearing.
	Pseudospectrum = music.Pseudospectrum
	// Fence is the virtual fence of section 2.3.1.
	Fence = locate.Fence
	// BearingObs is one AP's bearing observation for triangulation.
	BearingObs = locate.BearingObs
	// Point is a 2-D position in metres.
	Point = geom.Point
	// MAC is a 48-bit link-layer address.
	MAC = wifi.Addr
	// TestbedClient is one of the Figure 4 testbed's numbered clients.
	TestbedClient = testbed.Client
	// BatchItem is one transmission for AP.ObserveBatch.
	BatchItem = core.BatchItem
	// BatchResult is one AP.ObserveBatch output (report or error).
	BatchResult = core.BatchResult
	// FrameBatchItem is one MAC frame for AP.ProcessFrameBatch.
	FrameBatchItem = core.FrameBatchItem
	// FrameBatchResult is one AP.ProcessFrameBatch output.
	FrameBatchResult = core.FrameBatchResult
	// Manifold is a precomputed steering manifold for an (array, grid)
	// pair — the cache behind the estimation fast path.
	Manifold = antenna.Manifold
	// Controller is the multi-AP fusion controller: bearing reports in,
	// fence decisions and mobility tracks out, backed by a bounded
	// MAC-sharded fusion engine (see NewController).
	Controller = netproto.Controller
	// ControllerStats are the controller's fusion/ingress counters.
	ControllerStats = netproto.ControllerStats
	// ControllerStatus is the controller's live status document —
	// fusion/defense/journal counters, per-AP health, the threat table —
	// from Controller.StatusReport or the ops endpoint's /status.
	ControllerStatus = netproto.Status
	// APHealth is one connected session's health snapshot (last seen,
	// frames, reports, acks, send-queue depth).
	APHealth = netproto.APHealth
	// JournalStats are the flight recorder's position and durability
	// counters, from Journal.Stats.
	JournalStats = journal.Stats
	// MetricsRegistry is the ops metrics core: atomic counters, gauges,
	// and fixed-bucket histograms with Prometheus text exposition. The
	// process-wide instance is Metrics().
	MetricsRegistry = ops.Registry
	// FenceDecision is one fused controller decision.
	FenceDecision = netproto.FenceDecision
	// TrackState is one client's live mobility-trace state, from
	// Controller.Track/Snapshot or the wire Query/Tracks exchange.
	TrackState = fusion.TrackState
	// Verdict is a scored spoof-check outcome: decision, distance, and
	// the threshold it was judged against (Margin() is the headroom).
	Verdict = signature.Verdict
	// Directive is one typed defense countermeasure order: the
	// controller's defense engine emits them on threat transitions and
	// APs apply them (see Node.ApplyDirective).
	Directive = defense.Directive
	// DirectiveAction selects a directive's countermeasure.
	DirectiveAction = defense.Action
	// ThreatState is a client's position in the defense state machine
	// (allow -> monitor -> quarantine).
	ThreatState = defense.State
	// ClientThreat is one client's queryable defense state, from
	// Controller.Threats/Threat or the wire Query(KindThreats) exchange.
	ClientThreat = defense.ClientThreat
	// DefensePolicy tunes the controller's threat state machine
	// (escalation thresholds, score decay, quarantine TTL).
	DefensePolicy = defense.Policy
	// DefenseStats are the defense engine's counters.
	DefenseStats = defense.Stats
	// Countermeasure is one directive as applied at an AP (quarantine
	// mark or null-steer weights).
	Countermeasure = core.Countermeasure
	// Journal is the controller's flight recorder: a segmented,
	// CRC32C-framed, append-only event log plus engine snapshots (see
	// OpenJournal and Controller.WithJournal).
	Journal = journal.Journal
	// JournalOptions tunes a Journal (segment size, retention, fsync
	// policy).
	JournalOptions = journal.Options
	// JournalRecord is one journal entry (LSN, type, timestamp, payload).
	JournalRecord = journal.Record
	// FsyncPolicy selects the journal's durability/latency tradeoff.
	FsyncPolicy = journal.FsyncPolicy
	// ReplayOptions tunes a counterfactual ReplayJournal run.
	ReplayOptions = journal.ReplayOptions
	// ReplayResult is a completed ReplayJournal run: the counterfactual
	// directive sequence plus what the live policy actually recorded.
	ReplayResult = journal.ReplayResult
	// ReplayedDirective is one directive a replayed policy emitted.
	ReplayedDirective = journal.ReplayedDirective
	// JournalCursor streams a journal directory in LSN order, following
	// rotations and parking at a torn tail — the replication read path
	// (see journal.NewCursor).
	JournalCursor = journal.Cursor
	// CompactPolicy tunes compaction-aware retention: Journal.Compact
	// rewrites sealed snapshot-covered segments keeping only
	// incident-relevant events within ±Window of each incident span.
	CompactPolicy = journal.CompactPolicy
	// CompactStats reports what one Compact pass examined, rewrote,
	// dropped, and reclaimed.
	CompactStats = journal.CompactStats
	// Standby is a warm replica of a leader controller: it streams the
	// leader's journal partitions over the AP port (enrollment tokens
	// as the trust root), applies continuously, and can be promoted to
	// a serving controller (see NewStandby).
	Standby = netproto.Standby
	// StandbyConfig configures a Standby (leader address, journal
	// directory, token, auto-promote timeout).
	StandbyConfig = netproto.StandbyConfig
	// StandbyStatus is a standby's replication position: per-partition
	// lag and the failover-readiness flag.
	StandbyStatus = netproto.StandbyStatus
	// ReplicaStatus is the leader-side view of one connected standby:
	// per-partition sent/acked LSNs and lag (Controller.ReplicationStatus).
	ReplicaStatus = netproto.ReplicaStatus
	// BearingMode selects how Config.Bearing resolves the report bearing
	// (grid scan vs grid-free root-MUSIC/ESPRIT; the pseudospectrum and
	// every decision built on it stay grid-scanned in all modes).
	BearingMode = core.BearingMode
)

// Bearing estimator modes for Config.Bearing, re-exported.
const (
	// BearingAuto (the default) uses root-MUSIC on uniform linear
	// arrays and falls back to the grid scan elsewhere.
	BearingAuto = core.BearingAuto
	// BearingGrid forces the 1-degree manifold grid scan.
	BearingGrid = core.BearingGrid
	// BearingRootMUSIC resolves bearings by polynomial rooting (ULA only).
	BearingRootMUSIC = core.BearingRootMUSIC
	// BearingESPRIT resolves bearings by least-squares rotational
	// invariance, with no spectral search at all (ULA only).
	BearingESPRIT = core.BearingESPRIT
)

// Defense directive actions and threat states, re-exported.
const (
	ActionAllow      = defense.ActionAllow
	ActionQuarantine = defense.ActionQuarantine
	ActionNullSteer  = defense.ActionNullSteer

	ThreatAllow      = defense.StateAllow
	ThreatMonitor    = defense.StateMonitor
	ThreatQuarantine = defense.StateQuarantine
)

// Journal fsync policies, re-exported.
const (
	// FsyncInterval (the default) batches durability on a background
	// flusher; a crash loses at most the last interval's events.
	FsyncInterval = journal.FsyncInterval
	// FsyncAlways fsyncs every append before returning.
	FsyncAlways = journal.FsyncAlways
	// FsyncNever leaves durability to the OS page cache.
	FsyncNever = journal.FsyncNever
)

// OpenJournal opens (creating as needed) a flight-recorder journal
// directory. Attach it to a controller with Controller.WithJournal
// before Serve; a restarted controller recovers its fusion and defense
// state from the same directory.
func OpenJournal(dir string, opts JournalOptions) (*Journal, error) {
	return journal.Open(dir, opts)
}

// ReplayJournal re-runs a recorded incident offline under opts.Policy —
// deterministic counterfactual replay of the journalled event stream
// (see the journal package for the guarantees).
func ReplayJournal(dir string, opts ReplayOptions) (*ReplayResult, error) {
	return journal.Replay(dir, opts)
}

// NewStandby builds a warm standby that follows cfg.LeaderAddr's
// journal stream. Run it with Standby.Run; promote it with
// Standby.Promote (or cfg.PromoteAfter of leader silence), after which
// Standby.Controller serves APs — reconnecting sessions present their
// original enrollment tokens and are resumed.
func NewStandby(cfg StandbyConfig) (*Standby, error) { return netproto.NewStandby(cfg) }

// DefaultConfig returns the pipeline settings used throughout the paper
// reproduction.
func DefaultConfig() Config { return core.DefaultConfig() }

// Testbed returns the paper's Figure 4 environment and the building-shell
// fence boundary.
func Testbed() (*Environment, geom.Polygon) { return testbed.Building() }

// AP positions of the testbed.
var (
	AP1 = testbed.AP1
	AP2 = testbed.AP2
	AP3 = testbed.AP3
)

// Client returns testbed client id (1-20).
func Client(id int) (testbed.Client, error) { return testbed.ClientByID(id) }

// CircularArray returns the paper's octagonal 8-antenna array (4.7 cm
// sides); LinearArray the half-wavelength 8-antenna ULA (6.13 cm spacing).
func CircularArray() *Array { return testbed.CircularArray() }

// LinearArray returns the paper's half-wavelength 8-antenna ULA.
func LinearArray() *Array { return testbed.LinearArray() }

// NewTestbedAP builds a calibrated AP with the circular array at pos in
// the Figure 4 environment, seeded deterministically.
func NewTestbedAP(name string, pos Point, seed int64) *AP {
	return NewTestbedAPConfig(name, pos, seed, DefaultConfig())
}

// NewTestbedAPConfig is NewTestbedAP with an explicit pipeline Config
// (estimator choice, worker-pool bound, detection tuning). It is a thin
// adapter over the v2 constructor: equivalent to
//
//	node, _ := New(WithName(name), WithPosition(pos), WithSeed(seed), WithConfig(cfg))
//	ap := node.AP()
//
// and like New it panics only on a Config that fails Validate after
// defaulting.
func NewTestbedAPConfig(name string, pos Point, seed int64, cfg Config) *AP {
	n, err := New(WithName(name), WithPosition(pos), WithSeed(seed), WithConfig(cfg))
	if err != nil {
		panic(err)
	}
	return n.AP()
}

// uplinkPayload is the canonical payload ObserveFrame and friends send;
// hoisted so the steady-state packet path does not re-allocate it.
var uplinkPayload = []byte("uplink")

// ObserveFrame sends one QPSK uplink data frame from the given testbed
// client position through the channel to the AP and returns the bearing
// report — the one-call version of the full pipeline.
func ObserveFrame(ap *AP, clientID int, pos Point) (*Report, error) {
	bb, err := testbed.FrameBaseband(testbed.UplinkFrame(clientID, 1, uplinkPayload), ofdm.QPSK)
	if err != nil {
		return nil, err
	}
	return ap.Observe(pos, bb)
}

// ObserveFrameBatch sends one QPSK uplink data frame from each client and
// runs the estimation stages on the AP's bounded worker pool — the batch
// form of ObserveFrame. Results align with clients by index; per-client
// failures (blocked, undetected) surface as per-item errors.
func ObserveFrameBatch(ap *AP, clients []TestbedClient) ([]BatchResult, error) {
	items := make([]BatchItem, len(clients))
	for i, c := range clients {
		bb, err := testbed.FrameBaseband(testbed.UplinkFrame(c.ID, 1, uplinkPayload), ofdm.QPSK)
		if err != nil {
			return nil, err
		}
		items[i] = BatchItem{TX: c.Pos, Baseband: bb}
	}
	return ap.ObserveBatch(items), nil
}

// Triangulate fuses bearing observations from two or more APs into a
// position (least squares).
func Triangulate(obs []BearingObs) (Point, error) { return locate.Triangulate(obs) }

// ErrAuthRejected: the controller refused the handshake for a missing,
// unknown, or revoked enrollment token (see Controller.EnrollAP).
var ErrAuthRejected = netproto.ErrAuthRejected

// Metrics returns the process-wide metrics registry: every instrumented
// layer (pipeline, fusion, defense, journal, controller sessions)
// registers its instruments here, and Controller.ServeOps serves it as
// Prometheus text exposition at /metrics. Use WriteMetrics (or
// reg.WritePrometheus) to scrape it in-process.
func Metrics() *MetricsRegistry { return ops.Default() }

// WriteMetrics writes the process-wide registry in Prometheus text
// exposition format (version 0.0.4) — the in-process scrape.
func WriteMetrics(w io.Writer) error { return ops.Default().WritePrometheus(w) }

// NewController builds the multi-AP fusion controller for a fence.
// Tune the exported bounds (MinDiversityDeg, PendingTTL, MaxClients,
// MaxPendingPerClient, FusionShards, ...) before Serve; see the README
// "Controller at scale" section for the lifecycle guarantees.
func NewController(fence *Fence) *Controller { return netproto.NewController(fence) }
